"""`AtpgSession` — one circuit, one compiled kernel, every workload.

The session is the front door of the reproduction: it owns exactly one
frozen circuit plus its lowered kernel form (compiled once, in the
constructor) and exposes each workload as a method behind that shared
substrate:

* :meth:`generate` — engine-mode test generation (a 1-worker,
  unbounded-window campaign, bit-identical to the legacy
  ``generate_tests``),
* :meth:`campaign` — the staged, sharded, checkpointable pipeline,
* :meth:`simulate` — batched PPSFP detection masks,
* :meth:`grade` — pattern-set coverage grading with fault dropping,
* :meth:`bist` — pseudorandom BIST (LFSR pattern slabs, fault-dropping
  coverage curve, MISR golden signature),
* :meth:`paths` — structural path/fault statistics and enumeration.

All methods read the one unified :class:`repro.api.Options` model;
per-call keyword overrides are merged over the session defaults, so a
session can carry a house style (``Options(width=64)``) while
individual calls tweak single fields.

Quickstart::

    from repro.api import AtpgSession

    session = AtpgSession.open("c880")
    report = session.generate(test_class="robust")
    print(report.summary())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..circuit import Circuit
from ..core.patterns import TestPattern
from ..core.results import TpgReport
from ..paths import (
    PathDelayFault,
    TestClass,
    count_faults,
    count_paths,
    fault_list,
    iter_paths,
    path_length_histogram,
)
from .options import Options
from .resolve import circuit_fingerprint, resolve_circuit, resolve_test_class


class AtpgSession:
    """A long-lived façade over one frozen circuit and its kernel.

    Args:
        circuit: the target circuit; frozen on entry (idempotent) and
            lowered to the compiled kernel exactly once.
        options: session-default :class:`Options` (``None`` = library
            defaults).  Every method merges its per-call overrides
            over these.
    """

    def __init__(self, circuit: Circuit, *, options: Optional[Options] = None):
        circuit.freeze()
        self.circuit = circuit
        self.compiled = circuit.compiled()
        self.options = Options.adopt(options)
        self._fingerprint: Optional[str] = None
        self._simulators: Dict = {}
        # circuit-breaker state: once a kernel fault demotes this
        # session, every later simulate/grade call starts at the
        # demoted tier (sticky until the session is rebuilt)
        self._degrade_level = 0
        self.degrade_events: List[Dict[str, object]] = []

    # ------------------------------------------------------------ builders
    @classmethod
    def open(
        cls,
        spec: str,
        *,
        scale: int = 1,
        options: Optional[Options] = None,
    ) -> "AtpgSession":
        """Open a session from a circuit spec (file/embedded/suite name)."""
        return cls(resolve_circuit(spec, scale), options=options)

    # ------------------------------------------------------------ identity
    @property
    def circuit_hash(self) -> str:
        """Structural fingerprint (the service's session-cache key)."""
        if self._fingerprint is None:
            self._fingerprint = circuit_fingerprint(self.circuit)
        return self._fingerprint

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AtpgSession({self.circuit.name!r}, "
            f"hash={self.circuit_hash[:12]})"
        )

    # ------------------------------------------------------------ helpers
    def _options(self, options: Optional[Options], overrides: Dict) -> Options:
        base = self.options if options is None else Options.adopt(options)
        return base.merged(**overrides) if overrides else base

    def _faults(
        self,
        faults: Optional[Sequence[PathDelayFault]],
        max_faults: Optional[int],
        strategy: str,
    ) -> List[PathDelayFault]:
        if faults is not None:
            return list(faults)
        return fault_list(self.circuit, cap=max_faults, strategy=strategy)

    def _simulator(self, test_class: TestClass, backend: str, fusion: str):
        from ..sim.delay_sim import DelayFaultSimulator  # lazy: import cycle

        key = (test_class, backend, fusion)
        if key not in self._simulators:
            self._simulators[key] = DelayFaultSimulator(
                self.circuit, test_class, backend=backend, fusion=fusion
            )
        return self._simulators[key]

    # ------------------------------------------------------------ breaker
    @property
    def degrade_level(self) -> int:
        """0 = as requested, 1 = numpy/auto, 2 = numpy/interp."""
        return self._degrade_level

    @property
    def degraded(self) -> bool:
        return self._degrade_level > 0

    def resilient_masks(
        self,
        patterns,
        faults: Sequence[PathDelayFault],
        *,
        test_class: TestClass,
        backend: str = "auto",
        fusion: str = "auto",
    ) -> List[int]:
        """Detection masks behind the runtime degradation chain.

        Tier 0 runs the requested backend/fusion pair (``"auto"``
        resolves to native where compiled); a kernel *fault* —
        anything but the ``ValueError``/``TypeError`` input rejections,
        which no backend change can fix — demotes the session one tier
        and retries the same call: first to the numpy backend, then to
        the interpreted per-gate loop (the oracle every fast path is
        verified against).  Demotion is sticky for the session's
        lifetime and recorded in :attr:`degrade_events` (the service
        surfaces the count as ``degraded_circuits`` in
        ``/v1/metrics``); only a call failing at the last tier
        propagates its exception.  All tiers are bit-identical, so a
        degraded answer is still *the* answer, just slower.
        """
        tiers = [(backend, fusion), ("numpy", "auto"), ("numpy", "interp")]
        level = min(self._degrade_level, len(tiers) - 1)
        while True:
            tier_backend, tier_fusion = tiers[level]
            sim = self._simulator(test_class, tier_backend, tier_fusion)
            try:
                return sim.detection_masks(patterns, list(faults))
            except (ValueError, TypeError):
                raise  # malformed input: no tier can answer it
            except Exception as exc:  # noqa: BLE001 - breaker boundary
                if level >= len(tiers) - 1:
                    raise
                level += 1
                self._degrade_level = max(self._degrade_level, level)
                self.degrade_events.append(
                    {
                        "level": level,
                        "backend": tiers[level][0],
                        "fusion": tiers[level][1],
                        "error": type(exc).__name__,
                        "detail": str(exc),
                    }
                )

    # ------------------------------------------------------------ generate
    def generate(
        self,
        faults: Optional[Sequence[PathDelayFault]] = None,
        *,
        test_class: Union[str, TestClass] = TestClass.NONROBUST,
        options: Optional[Options] = None,
        max_faults: Optional[int] = None,
        strategy: str = "all",
        **overrides,
    ) -> TpgReport:
        """Engine-mode generation over a materialized fault list.

        With ``faults=None`` the structural fault list of the circuit
        is materialized (optionally capped/selected via *max_faults* /
        *strategy*, as the CLI always did).  Runs the identical
        1-worker unbounded-window campaign as the deprecated
        ``generate_tests`` — per-fault statuses are bit-identical.
        """
        from ..core.engine import _generate  # lazy: import cycle

        return _generate(
            self.circuit,
            self._faults(faults, max_faults, strategy),
            resolve_test_class(test_class),
            self._options(options, overrides),
        )

    # ------------------------------------------------------------ campaign
    def campaign(
        self,
        *,
        faults: Optional[Sequence[PathDelayFault]] = None,
        universe=None,
        test_class: Union[str, TestClass] = TestClass.NONROBUST,
        options: Optional[Options] = None,
        control=None,
        **overrides,
    ):
        """The staged pipeline: stream → shard → generate → drop.

        Accepts a materialized fault list, a
        :class:`repro.campaign.FaultUniverse`, or neither (the full
        structural universe is streamed).  Returns a
        :class:`repro.campaign.CampaignReport`.  *control* is an
        optional :class:`repro.campaign.CampaignControl` — the
        cancellation/progress hook the service's job queue uses.
        """
        from ..campaign.runner import execute_campaign  # lazy: import cycle

        return execute_campaign(
            self.circuit,
            faults=faults,
            test_class=resolve_test_class(test_class),
            options=self._options(options, overrides),
            universe=universe,
            control=control,
        )

    # ------------------------------------------------------------ bist
    def bist(
        self,
        *,
        fault_model: str = "stuck_at",
        faults: Optional[Sequence] = None,
        test_class: Union[str, TestClass] = TestClass.NONROBUST,
        options: Optional[Options] = None,
        max_faults: Optional[int] = None,
        control=None,
        **overrides,
    ):
        """Pseudorandom BIST: LFSR patterns, coverage curve, signature.

        Builds the LFSR/MISR pair from the options' ``bist`` layer,
        streams windowed packed pattern slabs through the fault
        simulator with fault dropping, and compacts the fault-free
        responses into the golden signature.  *fault_model* is
        ``"stuck_at"`` (single-vector patterns, *test_class* unused)
        or ``"path_delay"`` (consecutive LFSR states as launch/capture
        pairs graded under *test_class*).  With ``faults=None`` the
        circuit's full structural fault list of the chosen model is
        graded (optionally capped by *max_faults*).  Returns a
        :class:`repro.bist.BistReport`; *control* is the same
        cancellation/progress hook :meth:`campaign` takes.
        """
        from ..bist import LFSR, MISR, run_bist  # lazy: import cycle
        from ..bist.report import BistReport

        fault_model = fault_model.replace("-", "_")
        opts = self._options(options, overrides)
        opts.validate()
        resolved_class = resolve_test_class(test_class)
        if fault_model == "stuck_at":
            if faults is None:
                from ..core.stuck_at import all_stuck_at_faults

                fault_set = all_stuck_at_faults(self.circuit)
                if max_faults is not None:
                    fault_set = fault_set[:max_faults]
            else:
                fault_set = list(faults)
        else:
            fault_set = self._faults(faults, max_faults, "all")
        lfsr = LFSR(
            opts.bist_width,
            kind=opts.bist_kind,
            polynomial=opts.bist_polynomial,
            seed=opts.bist_seed,
            phase_spread=opts.bist_phase_spread,
        )
        misr = MISR(opts.misr_width)
        result = run_bist(
            self.circuit,
            lfsr,
            misr,
            fault_set,
            fault_model=fault_model,
            test_class=resolved_class,
            window=opts.bist_window,
            max_patterns=opts.bist_max_patterns,
            target_coverage=opts.bist_target_coverage,
            backend=opts.sim_backend,
            fusion=opts.fusion,
            control=control,
        )
        return BistReport(
            circuit_name=self.circuit.name,
            fault_model=fault_model,
            test_class=resolved_class if fault_model == "path_delay" else None,
            lfsr_width=lfsr.width,
            lfsr_kind=lfsr.kind,
            lfsr_polynomial=lfsr.polynomial,
            lfsr_seed=lfsr.seed,
            phase_spread=lfsr.phase_spread,
            misr_width=misr.width,
            misr_polynomial=misr.polynomial,
            signature=result.signature,
            aliasing_probability=misr.aliasing_probability,
            faults=result.faults,
            detected=result.detected,
            patterns_applied=result.patterns_applied,
            windows=result.windows,
            stop_reason=result.stop_reason,
            max_patterns=opts.bist_max_patterns,
            target_coverage=opts.bist_target_coverage,
            curve=result.curve,
        )

    # ------------------------------------------------------------ simulate
    def simulate(
        self,
        patterns: Sequence[TestPattern],
        faults: Sequence[PathDelayFault],
        *,
        test_class: Union[str, TestClass] = TestClass.NONROBUST,
        backend: str = "auto",
        fusion: str = "auto",
    ) -> List[int]:
        """Batched PPSFP: per-fault lane masks, aligned with *faults*.

        Bit ``k`` of ``masks[i]`` is set iff ``patterns[k]`` detects
        ``faults[i]`` under the session circuit and *test_class*.  The
        simulator for each (class, backend, fusion) triple is built
        once per session and reused across calls.  *backend* accepts
        ``"auto"``/``"int"``/``"numpy"``/``"native"`` — the compiled-C
        word backend falls back to numpy (with a one-time warning)
        when no C toolchain is available; every backend is
        bit-identical.

        Runs behind the session circuit breaker
        (:meth:`resilient_masks`): a kernel fault demotes the session
        to a slower bit-identical tier instead of failing the call.
        """
        return self.resilient_masks(
            patterns,
            faults,
            test_class=resolve_test_class(test_class),
            backend=backend,
            fusion=fusion,
        )

    # ------------------------------------------------------------ grade
    def grade(
        self,
        patterns: Sequence[TestPattern],
        faults: Sequence[PathDelayFault],
        *,
        test_class: Union[str, TestClass] = TestClass.NONROBUST,
        backend: str = "auto",
        fusion: str = "auto",
        strength: bool = False,
    ) -> Dict[str, object]:
        """Grade a pattern set: which faults does it cover?

        Returns a flat dict (the ``repro/grade-report`` wire shape
        minus the envelope): fault/detected counts, the coverage
        fraction, and an index-aligned ``detected_flags`` list.

        With ``strength=True`` the batch is additionally graded
        through the hazard-aware 10-valued calculus
        (:func:`repro.sim.delay_sim.strength_masks_all`, honoring the
        same *backend*/*fusion* selection): the report gains a
        ``strengths`` list — per fault, the strongest class in which
        any pattern detects it (``"hazard_free_robust"`` ⊂
        ``"robust"`` ⊂ ``"nonrobust"``, or ``None``) — and the
        aggregated ``strength_counts``.
        """
        faults = list(faults)
        resolved_class = resolve_test_class(test_class)
        if strength:
            from ..sim.delay_sim import strength_masks_all  # lazy: cycle

            # one 10-valued pass serves both jobs: its first four
            # planes are the 7-valued planes and the nonrobust/robust
            # walk conditions are identical, so the requested class's
            # detection masks fall out of the strength triples
            triples = strength_masks_all(
                self.circuit, patterns, faults, backend=backend, fusion=fusion
            )
            robust_class = resolved_class is TestClass.ROBUST
            masks = [t[1] if robust_class else t[0] for t in triples]
        else:
            masks = self.simulate(
                patterns, faults, test_class=test_class, backend=backend,
                fusion=fusion,
            )
        report = self.grade_from_masks(
            masks, n_patterns=len(patterns), n_faults=len(faults),
            test_class=resolved_class,
        )
        if strength:
            strengths = []
            counts = {"hazard_free_robust": 0, "robust": 0, "nonrobust": 0}
            for nonrobust, robust, strong in triples:
                if strong:
                    label = "hazard_free_robust"
                elif robust:
                    label = "robust"
                elif nonrobust:
                    label = "nonrobust"
                else:
                    label = None
                strengths.append(label)
                if label is not None:
                    counts[label] += 1
            report["strengths"] = strengths
            report["strength_counts"] = counts
        return report

    def grade_from_masks(
        self,
        masks: Sequence[int],
        *,
        n_patterns: int,
        n_faults: int,
        test_class: Union[str, TestClass] = TestClass.NONROBUST,
    ) -> Dict[str, object]:
        """The grade-report body from already-computed detection masks.

        Shared by :meth:`grade` and by callers that obtained the masks
        another way — notably the service coalescer, which demuxes one
        merged-slab simulation into per-request mask lists and still
        needs each request's own report.
        """
        flags = [bool(mask) for mask in masks]
        detected = sum(flags)
        return {
            "circuit": self.circuit.name,
            "test_class": resolve_test_class(test_class).value,
            "patterns": n_patterns,
            "faults": n_faults,
            "detected": detected,
            "coverage": detected / n_faults if n_faults else 1.0,
            "detected_flags": flags,
        }

    # ------------------------------------------------------------ paths
    def paths(
        self,
        *,
        histogram: bool = False,
        limit: Optional[int] = None,
    ) -> Dict[str, object]:
        """Structural statistics: path/fault counts, optional extras.

        With *histogram*, adds the path-length histogram as sorted
        ``[length, count]`` pairs; with *limit*, adds the first
        *limit* paths as dash-joined signal-name strings (the
        ``repro/paths-report`` wire shape minus the envelope).
        """
        result: Dict[str, object] = {
            "circuit": self.circuit.name,
            "stats": self.circuit.stats(),
            "paths": count_paths(self.circuit),
            "faults": count_faults(self.circuit),
        }
        if histogram:
            result["histogram"] = [
                [length, count]
                for length, count in sorted(
                    path_length_histogram(self.circuit).items()
                )
            ]
        if limit:
            result["listed"] = [
                "-".join(self.circuit.signal_name(s) for s in path)
                for path in iter_paths(self.circuit, max_paths=limit)
            ]
        return result
