"""repro.api — the front door: session, options, schemas, service.

One typed surface for every workload the reproduction supports:

* :class:`AtpgSession` — owns one frozen circuit + compiled kernel;
  ``generate`` / ``campaign`` / ``simulate`` / ``grade`` / ``bist`` /
  ``paths`` all execute behind it,
* :class:`Options` — the unified layered options model (generation →
  schedule → execution → persistence → bist) that subsumes the
  deprecated ``TpgOptions`` and ``CampaignOptions``,
* :mod:`repro.api.schemas` / :mod:`repro.api.serde` — versioned JSON
  wire format (``schema`` / ``schema_version`` envelope) with
  round-trip codecs for circuits, faults, patterns, and reports,
* :class:`AtpgService` + :func:`run_server` — the request/response
  dispatcher and its stdlib HTTP endpoint (``tip serve``), with an
  LRU session cache keyed by circuit hash.
"""

from . import schemas, serde
from .coalesce import Coalescer
from .jobs import Job, JobManager, QuotaExceeded
from .options import (
    DEFAULT_SHARDS,
    BistOptions,
    ExecutionOptions,
    GenerationOptions,
    Options,
    PersistenceOptions,
    ScheduleOptions,
    ServiceOptions,
)
from .resolve import (
    ResolutionError,
    circuit_fingerprint,
    resolve_circuit,
    resolve_circuit_request,
    resolve_test_class,
)
from .schemas import SchemaError, validate_file
from .session import AtpgSession
from .service import (
    AtpgService,
    BistRequest,
    CampaignRequest,
    GenerateRequest,
    GradeRequest,
    PathsRequest,
    Response,
    SimulateRequest,
    make_server,
    run_server,
)

__all__ = [
    "AtpgService",
    "AtpgSession",
    "BistOptions",
    "BistRequest",
    "CampaignRequest",
    "Coalescer",
    "DEFAULT_SHARDS",
    "ExecutionOptions",
    "GenerateRequest",
    "GenerationOptions",
    "GradeRequest",
    "Job",
    "JobManager",
    "Options",
    "PathsRequest",
    "PersistenceOptions",
    "QuotaExceeded",
    "ResolutionError",
    "Response",
    "ScheduleOptions",
    "SchemaError",
    "ServiceOptions",
    "SimulateRequest",
    "circuit_fingerprint",
    "make_server",
    "resolve_circuit",
    "resolve_circuit_request",
    "resolve_test_class",
    "run_server",
    "schemas",
    "serde",
    "validate_file",
]
