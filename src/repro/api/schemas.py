"""Versioned JSON schemas — the one wire format for every artifact.

Every JSON artifact the project reads or writes — serialized faults,
patterns, circuits, reports, campaign checkpoints, benchmark files,
service requests and responses — carries the same envelope::

    {"schema": "repro/<kind>", "schema_version": <int>, ...payload}

Durable artifacts written through :mod:`repro.api.integrity` carry a
third envelope key, ``sha256`` (the body's integrity digest); the
validator tolerates it on any kind, exactly like the schema keys.

This module is the registry of those kinds: a declarative structural
spec per ``(kind, version)`` plus a small validator (no third-party
dependency).  :func:`validate` rejects unknown kinds, unknown
versions, and shape drift; CI runs it over every checked-in artifact,
so changing a payload without bumping its version fails the build.

Spec mini-language (a nested dict per value):

* ``{"type": "object", "required": {...}, "optional": {...}, "open": bool}``
  — mapping with per-key specs; extra keys are rejected unless
  ``open`` is true.
* ``{"type": "array", "items": spec}`` — homogeneous list.
* ``{"type": "string"|"int"|"number"|"bool"|"null"|"any"}`` — scalars
  (``number`` accepts ints, ``any`` accepts everything).
* ``{"enum": [...]}`` / ``{"const": value}`` — literal constraints.
* ``{"anyOf": [spec, ...]}`` — union.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Optional, Tuple


class SchemaError(ValueError):
    """Raised for unknown kinds/versions and payload shape mismatches."""


# ---------------------------------------------------------------------------
# spec shorthands
# ---------------------------------------------------------------------------

STR = {"type": "string"}
INT = {"type": "int"}
NUM = {"type": "number"}
BOOL = {"type": "bool"}
NULL = {"type": "null"}
ANY = {"type": "any"}


def arr(items) -> Dict:
    return {"type": "array", "items": items}


def obj(required=None, optional=None, open_=False) -> Dict:
    return {
        "type": "object",
        "required": required or {},
        "optional": optional or {},
        "open": open_,
    }


def opt(spec) -> Dict:
    return {"anyOf": [spec, NULL]}


TEST_CLASS = {"enum": ["robust", "nonrobust"]}
STATUS = {"enum": ["tested", "redundant", "deferred", "aborted", "simulated"]}
#: v2 adds ``skipped_error`` — a fault whose shard the campaign
#: supervisor quarantined after repeated worker failures.
STATUS_V2 = {
    "enum": [
        "tested",
        "redundant",
        "deferred",
        "aborted",
        "simulated",
        "skipped_error",
    ]
}

#: Compact fault body: ``[[signal ids...], "R"|"F"]`` — shared with
#: campaign checkpoints, where one row per fault matters at scale.
FAULT_BODY = arr(ANY)
FAULT = obj({"signals": arr(INT), "transition": {"enum": ["R", "F"]}})
PATTERN = obj(
    {"v1": arr(INT), "v2": arr(INT)},
    optional={"fault": opt(FAULT)},
)
# Layers and fields are all optional on the wire: a client may send
# just the knobs it overrides ({"generation": {"width": 32}}) and the
# decoder fills the rest with defaults.


def _options_spec(
    generation_extra: Optional[Dict] = None,
    bist: bool = False,
    execution_extra: Optional[Dict] = None,
) -> Dict:
    generation = {
        "width": INT,
        "backtrack_limit": INT,
        "drop_faults": BOOL,
        "use_fptpg": BOOL,
        "use_aptpg": BOOL,
        "unique_backward": BOOL,
        "sim_backend": {"enum": ["auto", "int", "numpy", "native"]},
    }
    generation.update(generation_extra or {})
    execution = {"workers": INT}
    execution.update(execution_extra or {})
    layers = {
        "generation": obj(optional=generation),
        "schedule": obj(optional={"shards": INT, "window": opt(INT)}),
        "execution": obj(optional=execution),
        "persistence": obj(
            optional={
                "checkpoint": opt(STR),
                "checkpoint_every": INT,
                "resume": BOOL,
                "compact_every": opt(INT),
                "keep_records": BOOL,
            }
        ),
    }
    if bist:
        layers["bist"] = obj(
            optional={
                "bist_width": INT,
                "bist_kind": LFSR_KIND,
                "bist_polynomial": opt(INT),
                "bist_seed": INT,
                "bist_phase_spread": INT,
                "misr_width": INT,
                "bist_window": INT,
                "bist_max_patterns": INT,
                "bist_target_coverage": opt(NUM),
            }
        )
    return obj(optional=layers)


FUSION = {"enum": ["auto", "interp", "vector", "codegen"]}
LFSR_KIND = {"enum": ["fibonacci", "galois"]}
FAULT_MODEL = {"enum": ["stuck_at", "path_delay"]}

#: v1 options wire shape (pre-fusion), kept for old payloads.
OPTIONS_V1 = _options_spec()
#: v2 adds the generation-layer ``fusion`` strategy.
OPTIONS_V2 = _options_spec({"fusion": FUSION})
#: v3 adds the ``bist`` layer (the pseudorandom-BIST workload knobs
#: of ``AtpgSession.bist``).
OPTIONS_V3 = _options_spec({"fusion": FUSION}, bist=True)
#: Current options wire shape: v4 adds the execution-layer worker
#: supervision knobs (shard deadline / retry / quarantine) and the
#: test-only ``chaos`` fault-injection schedule.
OPTIONS = _options_spec(
    {"fusion": FUSION},
    bist=True,
    execution_extra={
        "shard_deadline_s": opt(NUM),
        "shard_attempts": INT,
        "retry_base_ms": NUM,
        "chaos": opt(STR),
    },
)
FAULT_RECORD = obj(
    {
        "status": STATUS,
        "mode": STR,
        "fault": opt(FAULT),
        "pattern": opt(PATTERN),
    }
)
#: v2: the status enum admits ``skipped_error``.
FAULT_RECORD_V2 = obj(
    {
        "status": STATUS_V2,
        "mode": STR,
        "fault": opt(FAULT),
        "pattern": opt(PATTERN),
    }
)
CAMPAIGN_STATS = obj(
    {
        "rounds": INT,
        "fptpg_rounds": INT,
        "aptpg_rounds": INT,
        "peak_pending": INT,
        "streamed": INT,
        "admitted_dropped": INT,
        "compactions": INT,
        "patterns_compacted_away": INT,
        "decisions": INT,
        "backtracks": INT,
        "implication_passes": INT,
        "seconds_sensitize": NUM,
        "seconds_simulate": NUM,
        "seconds_wall": NUM,
    }
)
#: v2 adds the worker-supervision counters.
CAMPAIGN_STATS_V2 = obj(
    {
        "rounds": INT,
        "fptpg_rounds": INT,
        "aptpg_rounds": INT,
        "peak_pending": INT,
        "streamed": INT,
        "admitted_dropped": INT,
        "compactions": INT,
        "patterns_compacted_away": INT,
        "decisions": INT,
        "backtracks": INT,
        "implication_passes": INT,
        "seconds_sensitize": NUM,
        "seconds_simulate": NUM,
        "seconds_wall": NUM,
        "worker_restarts": INT,
        "shard_retries": INT,
        "quarantined_shards": INT,
    }
)

_CIRCUIT_GATE = obj({"name": STR, "type": STR, "fanin": arr(STR)})

_BENCH_KERNEL_ROW = obj(
    {
        "circuit": STR,
        "test_class": TEST_CLASS,
        "signals": INT,
        "faults": INT,
        "patterns": INT,
        "seed_seconds": NUM,
        "kernel_seconds": NUM,
        "seed_throughput": NUM,
        "kernel_throughput": NUM,
        "speedup": NUM,
    }
)
# v2: fused-vs-interpreted strategy columns.  ``interp_*`` is the
# per-gate interpreter loop on the numpy backend (the v1
# ``kernel_*``); ``vector_*``/``codegen_*`` are the fused strategies;
# the seed object-graph baseline becomes optional (skippable on
# circuits where it would dominate the bench wall-clock).
_BENCH_KERNEL_ROW_V2 = obj(
    {
        "circuit": STR,
        "test_class": TEST_CLASS,
        "signals": INT,
        "faults": INT,
        "patterns": INT,
        "interp_seconds": NUM,
        "interp_throughput": NUM,
    },
    optional={
        "seed_seconds": NUM,
        "seed_throughput": NUM,
        "interp_speedup_vs_seed": NUM,
        "vector_seconds": NUM,
        "vector_throughput": NUM,
        "codegen_seconds": NUM,
        "codegen_throughput": NUM,
        "best_fused": {"enum": ["vector", "codegen"]},
        "fused_speedup": NUM,
    },
)
# v3: a required ``workload`` discriminator alongside the strategy
# columns — besides the historical PPSFP rows, the artifact now also
# tracks the 10-valued detection-strength grading pass and stuck-at
# cone resimulation (the fusion-sweep workloads the CI perf guard
# reads); ``test_class`` is absent on workloads without one.
_BENCH_KERNEL_ROW_V3 = obj(
    {
        "circuit": STR,
        "workload": {"enum": ["ppsfp", "grade10", "stuck_at"]},
        "signals": INT,
        "faults": INT,
        "patterns": INT,
        "interp_seconds": NUM,
        "interp_throughput": NUM,
    },
    optional={
        "test_class": TEST_CLASS,
        "seed_seconds": NUM,
        "seed_throughput": NUM,
        "interp_speedup_vs_seed": NUM,
        "vector_seconds": NUM,
        "vector_throughput": NUM,
        "codegen_seconds": NUM,
        "codegen_throughput": NUM,
        "best_fused": {"enum": ["vector", "codegen"]},
        "fused_speedup": NUM,
    },
)
# v4: optional compiled-C backend columns alongside the fused Python
# strategies — ``native_*`` is the whole workload inside the circuit's
# cffi-compiled module (:mod:`repro.kernel.native`); absent when the
# bench machine has no C toolchain.  ``native_speedup`` is
# interp_seconds / native_seconds, the row the CI perf guard reads.
_BENCH_KERNEL_ROW_V4 = obj(
    {
        "circuit": STR,
        "workload": {"enum": ["ppsfp", "grade10", "stuck_at"]},
        "signals": INT,
        "faults": INT,
        "patterns": INT,
        "interp_seconds": NUM,
        "interp_throughput": NUM,
    },
    optional={
        "test_class": TEST_CLASS,
        "seed_seconds": NUM,
        "seed_throughput": NUM,
        "interp_speedup_vs_seed": NUM,
        "vector_seconds": NUM,
        "vector_throughput": NUM,
        "codegen_seconds": NUM,
        "codegen_throughput": NUM,
        "best_fused": {"enum": ["vector", "codegen"]},
        "fused_speedup": NUM,
        "native_seconds": NUM,
        "native_throughput": NUM,
        "native_speedup": NUM,
    },
)
# v5: ``bist`` joins the workload enum — LFSR-fed path-delay grading
# (pre-generated packed two-vector slab through ``detection_masks``),
# timed by ``tip bench-sim --workload bist`` alongside the others.
_BENCH_KERNEL_ROW_V5 = obj(
    {
        "circuit": STR,
        "workload": {"enum": ["ppsfp", "grade10", "stuck_at", "bist"]},
        "signals": INT,
        "faults": INT,
        "patterns": INT,
        "interp_seconds": NUM,
        "interp_throughput": NUM,
    },
    optional={
        "test_class": TEST_CLASS,
        "seed_seconds": NUM,
        "seed_throughput": NUM,
        "interp_speedup_vs_seed": NUM,
        "vector_seconds": NUM,
        "vector_throughput": NUM,
        "codegen_seconds": NUM,
        "codegen_throughput": NUM,
        "best_fused": {"enum": ["vector", "codegen"]},
        "fused_speedup": NUM,
        "native_seconds": NUM,
        "native_throughput": NUM,
        "native_speedup": NUM,
    },
)
_BENCH_TPG_ROW = obj(
    {
        "circuit": STR,
        "runner": STR,
        "workers": INT,
        "shards": INT,
        "faults": INT,
        "detected": INT,
        "seconds": NUM,
        "faults_per_s": NUM,
        "speedup_vs_serial": NUM,
    }
)
# v2: the ``fusion`` strategy column (parity with bench-kernel v2+) —
# every runner row records which plan-execution strategy it ran under.
_BENCH_TPG_ROW_V2 = obj(
    {
        "circuit": STR,
        "runner": STR,
        "fusion": FUSION,
        "workers": INT,
        "shards": INT,
        "faults": INT,
        "detected": INT,
        "seconds": NUM,
        "faults_per_s": NUM,
        "speedup_vs_serial": NUM,
    }
)

_REQUEST_CIRCUIT = {
    "circuit": opt(STR),
    "bench": opt(STR),
    "scale": INT,
    "test_class": TEST_CLASS,
}

#: Async job lifecycle (the ``POST /v1/campaign`` submit/poll flow).
#: ``queued -> running -> done|failed|cancelled``; ``interrupted`` is
#: a graceful-shutdown snapshot that resumes from its checkpoint when
#: the service restarts over the same jobs directory.
JOB_STATE = {
    "enum": ["queued", "running", "done", "failed", "cancelled", "interrupted"]
}

_JOB = obj(
    {
        "id": STR,
        "verb": STR,
        "state": JOB_STATE,
        "tenant": STR,
        "submitted_at": NUM,
    },
    optional={
        "started_at": opt(NUM),
        "finished_at": opt(NUM),
        "progress": obj(open_=True),
        "result": obj(open_=True),
        "error": obj({"error": STR}, optional={"detail": STR}),
        "checkpoint": opt(STR),
    },
)

# v2: the job verb becomes a closed enum now that two async verbs
# exist — campaigns and BIST runs share one queue.
_JOB_V2 = obj(
    {
        "id": STR,
        "verb": {"enum": ["campaign", "bist"]},
        "state": JOB_STATE,
        "tenant": STR,
        "submitted_at": NUM,
    },
    optional={
        "started_at": opt(NUM),
        "finished_at": opt(NUM),
        "progress": obj(open_=True),
        "result": obj(open_=True),
        "error": obj({"error": STR}, optional={"detail": STR}),
        "checkpoint": opt(STR),
    },
)

_METRICS = obj(
    {
        "requests_ok": INT,
        "requests_failed": INT,
        "requests_coalesced": INT,
        "sessions_opened": INT,
        "sessions_cached": INT,
        "queue_depth": INT,
        "jobs": obj(
            {
                "queued": INT,
                "running": INT,
                "done": INT,
                "failed": INT,
                "cancelled": INT,
                "interrupted": INT,
            }
        ),
        "coalescer": obj(
            {"batches": INT, "requests": INT, "merged_requests": INT}
        ),
        "uptime_seconds": NUM,
    }
)

# v2: per-verb job counters alongside the per-state ones, so dashboards
# can tell queued campaigns from queued BIST runs.
_METRICS_V2 = obj(
    {
        "requests_ok": INT,
        "requests_failed": INT,
        "requests_coalesced": INT,
        "sessions_opened": INT,
        "sessions_cached": INT,
        "queue_depth": INT,
        "jobs": obj(
            {
                "queued": INT,
                "running": INT,
                "done": INT,
                "failed": INT,
                "cancelled": INT,
                "interrupted": INT,
            }
        ),
        "jobs_by_verb": obj({"campaign": INT, "bist": INT}),
        "coalescer": obj(
            {"batches": INT, "requests": INT, "merged_requests": INT}
        ),
        "uptime_seconds": NUM,
    }
)

# v3: the resilience counters — restarted workers (pool processes and
# job threads), supervised shard retries, quarantined shards, and
# sessions currently running at a degraded simulator tier (the
# circuit-breaker's native→numpy→interp demotion chain).
_METRICS_V3 = obj(
    {
        "requests_ok": INT,
        "requests_failed": INT,
        "requests_coalesced": INT,
        "sessions_opened": INT,
        "sessions_cached": INT,
        "queue_depth": INT,
        "jobs": obj(
            {
                "queued": INT,
                "running": INT,
                "done": INT,
                "failed": INT,
                "cancelled": INT,
                "interrupted": INT,
            }
        ),
        "jobs_by_verb": obj({"campaign": INT, "bist": INT}),
        "coalescer": obj(
            {"batches": INT, "requests": INT, "merged_requests": INT}
        ),
        "worker_restarts": INT,
        "shard_retries": INT,
        "quarantined_shards": INT,
        "degraded_circuits": INT,
        "uptime_seconds": NUM,
    }
)

#: BIST report wire shape: full generator/compactor configuration
#: (register hex values as strings — 64-bit polynomials exceed what
#: some JSON consumers keep exact), the coverage curve, and the
#: signature with its aliasing estimate.
_BIST_REPORT = obj(
    {
        "circuit": STR,
        "fault_model": FAULT_MODEL,
        "test_class": opt(TEST_CLASS),
        "lfsr": obj(
            {
                "width": INT,
                "kind": LFSR_KIND,
                "polynomial": STR,
                "seed": STR,
                "phase_spread": INT,
            }
        ),
        "misr": obj(
            {
                "width": INT,
                "polynomial": STR,
                "signature": STR,
                "aliasing_probability": NUM,
            }
        ),
        "faults": INT,
        "detected": INT,
        "coverage": NUM,
        "patterns_applied": INT,
        "windows": INT,
        "stop_reason": {
            "enum": ["target_coverage", "all_detected", "max_patterns", "stopped"]
        },
        "max_patterns": INT,
        "target_coverage": opt(NUM),
        "curve": arr(arr(INT)),  # [patterns, detected] pairs per window
    }
)

#: One BIST throughput measurement (``scripts/bench_bist.py``): the
#: full windowed loop (LFSR slab generation + grading + fault dropping
#: + MISR compaction) per backend tier, patterns/second.
_BENCH_BIST_ROW = obj(
    {
        "circuit": STR,
        "fault_model": FAULT_MODEL,
        "lfsr_width": INT,
        "lfsr_kind": LFSR_KIND,
        "patterns": INT,
        "window": INT,
        "faults": INT,
        "interp_seconds": NUM,
        "interp_patterns_per_s": NUM,
    },
    optional={
        "test_class": TEST_CLASS,
        "detected": INT,
        "coverage": NUM,
        "vector_seconds": NUM,
        "vector_patterns_per_s": NUM,
        "codegen_seconds": NUM,
        "codegen_patterns_per_s": NUM,
        "native_seconds": NUM,
        "native_patterns_per_s": NUM,
        "native_speedup": NUM,
    },
)

#: One measured load-generation configuration (``scripts/loadgen.py``):
#: fixed client count, coalescing on or off, aggregate throughput and
#: latency percentiles over the run.
_BENCH_SERVICE_ROW = obj(
    {
        "workload": {"enum": ["simulate", "grade"]},
        "circuit": STR,
        "clients": INT,
        "coalesce": BOOL,
        "window_ms": NUM,
        "patterns_per_request": INT,
        "faults": INT,
        "requests": INT,
        "errors": INT,
        "seconds": NUM,
        "requests_per_s": NUM,
        "p50_ms": NUM,
        "p95_ms": NUM,
    },
    optional={"speedup_vs_uncoalesced": NUM},
)

#: One chaos-mode loadgen run (``scripts/loadgen.py --chaos``): the
#: service is hammered while kernel faults and a job-worker death are
#: injected; the row records that availability held (``errors`` must
#: be 0 for the artifact to be accepted by ``--check``) plus the
#: recovery counters the service reported afterwards.
_BENCH_SERVICE_CHAOS_ROW = obj(
    {
        "workload": {"const": "chaos"},
        "circuit": STR,
        "clients": INT,
        "requests": INT,
        "errors": INT,
        "seconds": NUM,
        "requests_per_s": NUM,
        "injected_kernel_faults": INT,
        "injected_worker_deaths": INT,
        "degraded_circuits": INT,
        "worker_restarts": INT,
        "jobs_done": INT,
        "jobs_failed": INT,
    },
    optional={"p50_ms": NUM, "p95_ms": NUM},
)


# ---------------------------------------------------------------------------
# the registry: kind -> version -> body spec
# ---------------------------------------------------------------------------

def _campaign_report_spec(
    options_spec: Dict,
    stats_spec: Dict = CAMPAIGN_STATS,
    errors: bool = False,
) -> Dict:
    optional = {}
    if errors:
        # [index, envelope] pairs for skipped_error faults; emitted
        # only when a shard was quarantined
        optional["errors"] = arr(arr(ANY))
    return obj(
        {
            "circuit": STR,
            "test_class": TEST_CLASS,
            "options": options_spec,
            "statuses": arr(arr(ANY)),  # [index, status] pairs
            "modes": arr(arr(ANY)),  # [index, mode] pairs
            "records": opt(arr(arr(ANY))),  # [index, record] pairs
            "patterns": arr(PATTERN),
            "stats": stats_spec,
            "complete": BOOL,
        },
        optional=optional,
    )


SCHEMAS: Dict[str, Dict[int, Dict]] = {
    "repro/fault": {1: FAULT},
    "repro/pattern": {1: PATTERN},
    "repro/options": {1: OPTIONS_V1, 2: OPTIONS_V2, 3: OPTIONS_V3, 4: OPTIONS},
    "repro/circuit": {
        1: obj(
            {
                "name": STR,
                "inputs": arr(STR),
                "gates": arr(_CIRCUIT_GATE),
                "outputs": arr(STR),
            }
        )
    },
    "repro/tpg-report": {
        1: obj(
            {
                "circuit": STR,
                "test_class": TEST_CLASS,
                "width": INT,
                "records": arr(FAULT_RECORD),
                "seconds_sensitize": NUM,
                "seconds_generate": NUM,
                "seconds_simulate": NUM,
                "decisions": INT,
                "backtracks": INT,
                "implication_passes": INT,
            }
        ),
        # v2: records may carry the skipped_error status
        2: obj(
            {
                "circuit": STR,
                "test_class": TEST_CLASS,
                "width": INT,
                "records": arr(FAULT_RECORD_V2),
                "seconds_sensitize": NUM,
                "seconds_generate": NUM,
                "seconds_simulate": NUM,
                "decisions": INT,
                "backtracks": INT,
                "implication_passes": INT,
            }
        ),
    },
    "repro/campaign-report": {
        1: _campaign_report_spec(OPTIONS_V1),
        2: _campaign_report_spec(OPTIONS_V2),
        3: _campaign_report_spec(OPTIONS_V3),
        # v4: supervision options + counters, quarantine error rows
        4: _campaign_report_spec(OPTIONS, CAMPAIGN_STATS_V2, errors=True),
    },
    "repro/simulate-report": {
        1: obj(
            {
                "circuit": STR,
                "test_class": TEST_CLASS,
                "patterns": INT,
                "faults": INT,
                "masks": arr(STR),  # hex lane masks, index-aligned
            }
        )
    },
    "repro/grade-report": {
        1: obj(
            {
                "circuit": STR,
                "test_class": TEST_CLASS,
                "patterns": INT,
                "faults": INT,
                "detected": INT,
                "coverage": NUM,
                "detected_flags": arr(BOOL),
            }
        ),
        # v2: optional hazard-aware detection-strength breakdown
        # (AtpgSession.grade with strength=True): per-fault strongest
        # class and the aggregated counts.
        2: obj(
            {
                "circuit": STR,
                "test_class": TEST_CLASS,
                "patterns": INT,
                "faults": INT,
                "detected": INT,
                "coverage": NUM,
                "detected_flags": arr(BOOL),
            },
            optional={
                "strengths": arr(
                    opt({"enum": ["hazard_free_robust", "robust", "nonrobust"]})
                ),
                "strength_counts": obj(
                    {
                        "hazard_free_robust": INT,
                        "robust": INT,
                        "nonrobust": INT,
                    }
                ),
            },
        ),
    },
    "repro/paths-report": {
        1: obj(
            {
                "circuit": STR,
                "stats": obj(open_=True),
                "paths": INT,
                "faults": INT,
            },
            optional={
                "histogram": arr(arr(INT)),
                "listed": arr(STR),
            },
        )
    },
    "repro/campaign-checkpoint": {
        2: obj(
            {
                "version": {"const": 2},
                "circuit": STR,
                "test_class": TEST_CLASS,
                "width": INT,
                "shards": INT,
                "schedule": obj(open_=True),
                "stream_position": INT,
                "exhausted": BOOL,
                "complete": BOOL,
                "settled": arr(arr(ANY)),
                "pending": arr(arr(ANY)),
                "queue": arr(INT),
                "patterns": arr(arr(ANY)),
                "obligations": arr(FAULT_BODY),
                "stats": CAMPAIGN_STATS,
            }
        ),
        # v3: supervision counters in stats plus the quarantine error
        # rows (``[index, envelope]``); statuses may be skipped_error
        3: obj(
            {
                "version": {"const": 3},
                "circuit": STR,
                "test_class": TEST_CLASS,
                "width": INT,
                "shards": INT,
                "schedule": obj(open_=True),
                "stream_position": INT,
                "exhausted": BOOL,
                "complete": BOOL,
                "settled": arr(arr(ANY)),
                "pending": arr(arr(ANY)),
                "queue": arr(INT),
                "patterns": arr(arr(ANY)),
                "obligations": arr(FAULT_BODY),
                "stats": CAMPAIGN_STATS_V2,
                "errors": arr(arr(ANY)),
            }
        ),
    },
    "repro/bench-kernel": {
        1: obj(
            {
                "benchmark": {"const": "ppsfp_throughput"},
                "units": STR,
                "python": STR,
                "rows": arr(_BENCH_KERNEL_ROW),
            }
        ),
        2: obj(
            {
                "benchmark": {"const": "ppsfp_throughput"},
                "units": STR,
                "python": STR,
                "rows": arr(_BENCH_KERNEL_ROW_V2),
            }
        ),
        3: obj(
            {
                "benchmark": {"const": "fused_kernel_throughput"},
                "units": STR,
                "python": STR,
                "rows": arr(_BENCH_KERNEL_ROW_V3),
            }
        ),
        4: obj(
            {
                "benchmark": {"const": "fused_kernel_throughput"},
                "units": STR,
                "python": STR,
                "rows": arr(_BENCH_KERNEL_ROW_V4),
            }
        ),
        5: obj(
            {
                "benchmark": {"const": "fused_kernel_throughput"},
                "units": STR,
                "python": STR,
                "rows": arr(_BENCH_KERNEL_ROW_V5),
            }
        ),
    },
    "repro/bench-tpg": {
        1: obj(
            {
                "benchmark": {"const": "tpg_end_to_end_throughput"},
                "units": STR,
                "python": STR,
                "cpu_count": INT,
                "workers": INT,
                "note": STR,
                "rows": arr(_BENCH_TPG_ROW),
            }
        ),
        2: obj(
            {
                "benchmark": {"const": "tpg_end_to_end_throughput"},
                "units": STR,
                "python": STR,
                "cpu_count": INT,
                "workers": INT,
                "note": STR,
                "rows": arr(_BENCH_TPG_ROW_V2),
            }
        ),
    },
    "repro/request.generate": {
        1: obj(
            optional={
                **_REQUEST_CIRCUIT,
                "options": OPTIONS_V1,
                "max_faults": opt(INT),
                "strategy": {"enum": ["all", "longest", "sample"]},
                "include_patterns": BOOL,
            }
        ),
        2: obj(
            optional={
                **_REQUEST_CIRCUIT,
                "options": OPTIONS_V2,
                "max_faults": opt(INT),
                "strategy": {"enum": ["all", "longest", "sample"]},
                "include_patterns": BOOL,
            }
        ),
        3: obj(
            optional={
                **_REQUEST_CIRCUIT,
                "options": OPTIONS_V3,
                "max_faults": opt(INT),
                "strategy": {"enum": ["all", "longest", "sample"]},
                "include_patterns": BOOL,
            }
        ),
        4: obj(
            optional={
                **_REQUEST_CIRCUIT,
                "options": OPTIONS,
                "max_faults": opt(INT),
                "strategy": {"enum": ["all", "longest", "sample"]},
                "include_patterns": BOOL,
            }
        ),
    },
    "repro/request.campaign": {
        1: obj(
            optional={
                **_REQUEST_CIRCUIT,
                "options": OPTIONS_V1,
                "max_faults": opt(INT),
                "min_length": opt(INT),
                "max_length": opt(INT),
            }
        ),
        2: obj(
            optional={
                **_REQUEST_CIRCUIT,
                "options": OPTIONS_V2,
                "max_faults": opt(INT),
                "min_length": opt(INT),
                "max_length": opt(INT),
            }
        ),
        3: obj(
            optional={
                **_REQUEST_CIRCUIT,
                "options": OPTIONS_V3,
                "max_faults": opt(INT),
                "min_length": opt(INT),
                "max_length": opt(INT),
            }
        ),
        4: obj(
            optional={
                **_REQUEST_CIRCUIT,
                "options": OPTIONS,
                "max_faults": opt(INT),
                "min_length": opt(INT),
                "max_length": opt(INT),
            }
        ),
    },
    "repro/request.bist": {
        1: obj(
            optional={
                **_REQUEST_CIRCUIT,
                "options": OPTIONS_V3,
                "fault_model": FAULT_MODEL,
                "max_faults": opt(INT),
            }
        ),
        2: obj(
            optional={
                **_REQUEST_CIRCUIT,
                "options": OPTIONS,
                "fault_model": FAULT_MODEL,
                "max_faults": opt(INT),
            }
        ),
    },
    "repro/request.simulate": {
        1: obj(
            {"patterns": arr(PATTERN), "faults": arr(FAULT)},
            optional=_REQUEST_CIRCUIT,
        )
    },
    "repro/request.grade": {
        1: obj(
            {"patterns": arr(PATTERN), "faults": arr(FAULT)},
            optional=_REQUEST_CIRCUIT,
        )
    },
    "repro/request.paths": {
        1: obj(
            optional={
                **_REQUEST_CIRCUIT,
                "histogram": BOOL,
                "limit": INT,
            }
        )
    },
    "repro/response": {
        1: obj(
            {"ok": BOOL},
            optional={
                "result": obj(open_=True),
                "error": obj({"error": STR}, optional={"detail": STR}),
            },
        )
    },
    "repro/job": {1: _JOB, 2: _JOB_V2},
    "repro/job-list": {1: obj({"jobs": arr(_JOB)}), 2: obj({"jobs": arr(_JOB_V2)})},
    "repro/metrics": {1: _METRICS, 2: _METRICS_V2, 3: _METRICS_V3},
    "repro/bist-report": {1: _BIST_REPORT},
    "repro/bench-service": {
        1: obj(
            {
                "benchmark": {"const": "service_throughput"},
                "units": STR,
                "python": STR,
                "workers": INT,
                "rows": arr(_BENCH_SERVICE_ROW),
            }
        ),
        # v2: chaos-mode recovery rows alongside the throughput rows
        2: obj(
            {
                "benchmark": {"const": "service_throughput"},
                "units": STR,
                "python": STR,
                "workers": INT,
                "rows": arr(
                    {"anyOf": [_BENCH_SERVICE_ROW, _BENCH_SERVICE_CHAOS_ROW]}
                ),
            }
        ),
    },
    "repro/bench-bist": {
        1: obj(
            {
                "benchmark": {"const": "bist_throughput"},
                "units": STR,
                "python": STR,
                "rows": arr(_BENCH_BIST_ROW),
            }
        )
    },
}

#: Artifact basename -> expected kind, for file-level validation of
#: the checked-in benchmark JSONs (whose envelope must also agree).
ARTIFACT_KINDS = {
    "BENCH_kernel.json": "repro/bench-kernel",
    "BENCH_tpg.json": "repro/bench-tpg",
    "BENCH_service.json": "repro/bench-service",
    "BENCH_bist.json": "repro/bench-bist",
}


def latest_version(kind: str) -> int:
    try:
        return max(SCHEMAS[kind])
    except KeyError:
        raise SchemaError(f"unknown schema kind {kind!r}") from None


def stamp(kind: str, payload: Dict, version: Optional[int] = None) -> Dict:
    """Return *payload* with the envelope keys prepended."""
    version = latest_version(kind) if version is None else version
    return {"schema": kind, "schema_version": version, **payload}


# ---------------------------------------------------------------------------
# structural validation
# ---------------------------------------------------------------------------


def _check(spec: Dict, value, path: str) -> None:
    if "anyOf" in spec:
        errors = []
        for alternative in spec["anyOf"]:
            try:
                _check(alternative, value, path)
                return
            except SchemaError as exc:
                errors.append(str(exc))
        raise SchemaError(f"{path}: no alternative matched ({'; '.join(errors)})")
    if "const" in spec:
        if value != spec["const"]:
            raise SchemaError(f"{path}: expected {spec['const']!r}, got {value!r}")
        return
    if "enum" in spec:
        if value not in spec["enum"]:
            raise SchemaError(f"{path}: {value!r} not in {spec['enum']!r}")
        return
    kind = spec["type"]
    if kind == "any":
        return
    if kind == "null":
        if value is not None:
            raise SchemaError(f"{path}: expected null, got {type(value).__name__}")
        return
    if kind == "string":
        if not isinstance(value, str):
            raise SchemaError(f"{path}: expected string, got {type(value).__name__}")
        return
    if kind == "bool":
        if not isinstance(value, bool):
            raise SchemaError(f"{path}: expected bool, got {type(value).__name__}")
        return
    if kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise SchemaError(f"{path}: expected int, got {type(value).__name__}")
        return
    if kind == "number":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"{path}: expected number, got {type(value).__name__}")
        return
    if kind == "array":
        if not isinstance(value, list):
            raise SchemaError(f"{path}: expected array, got {type(value).__name__}")
        items = spec["items"]
        # hot path: long scalar arrays (pattern bit vectors, fault
        # signal lists, checkpoint rows) verified with one C-speed
        # sweep over exact JSON types; the per-element walk below only
        # runs when the sweep fails (its job is the indexed error
        # message) or for non-scalar/shared item specs
        if items is INT:
            if all(type(item) is int for item in value):
                return
        elif items is STR:
            if all(type(item) is str for item in value):
                return
        elif items is NUM:
            if all(type(item) is int or type(item) is float for item in value):
                return
        elif items is BOOL:
            if all(type(item) is bool for item in value):
                return
        for index, item in enumerate(value):
            _check(items, item, f"{path}[{index}]")
        return
    if kind == "object":
        if not isinstance(value, dict):
            raise SchemaError(f"{path}: expected object, got {type(value).__name__}")
        for name, sub in spec["required"].items():
            if name not in value:
                raise SchemaError(f"{path}: missing required key {name!r}")
            _check(sub, value[name], f"{path}.{name}")
        for name, sub in spec["optional"].items():
            if name in value:
                _check(sub, value[name], f"{path}.{name}")
        if not spec["open"]:
            known = set(spec["required"]) | set(spec["optional"])
            # "sha256" is the integrity envelope (see api.integrity):
            # like schema/schema_version it may ride on any enveloped
            # payload without being part of the body spec
            extra = sorted(
                set(value) - known - {"schema", "schema_version", "sha256"}
            )
            if extra:
                raise SchemaError(
                    f"{path}: unexpected keys {extra} (schema drift? bump the "
                    f"schema version and register the new shape)"
                )
        return
    raise SchemaError(f"{path}: unknown spec type {kind!r}")  # pragma: no cover


def validate(payload: Dict, kind: Optional[str] = None) -> Tuple[str, int]:
    """Validate one enveloped payload; returns ``(kind, version)``.

    Raises :class:`SchemaError` when the envelope is missing, the kind
    is unknown, *kind* (if given) does not match, the version is not
    registered for that kind, or the body fails the structural spec.
    """
    if not isinstance(payload, dict):
        raise SchemaError(f"artifact must be a JSON object, got {type(payload).__name__}")
    declared = payload.get("schema")
    version = payload.get("schema_version")
    if declared is None or version is None:
        raise SchemaError("missing schema/schema_version envelope")
    if kind is not None and declared != kind:
        raise SchemaError(f"expected schema {kind!r}, got {declared!r}")
    versions = SCHEMAS.get(declared)
    if versions is None:
        raise SchemaError(f"unknown schema kind {declared!r}")
    spec = versions.get(version)
    if spec is None:
        raise SchemaError(
            f"unknown schema_version {version!r} for {declared!r} "
            f"(known: {sorted(versions)})"
        )
    _check(spec, payload, "$")
    return declared, version


def validate_file(path: str) -> Tuple[str, int]:
    """Validate one JSON artifact file; returns ``(kind, version)``.

    When the basename is a known checked-in artifact, its declared
    kind must also match :data:`ARTIFACT_KINDS`.
    """
    import os

    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}: not valid JSON ({exc})") from None
    expected = ARTIFACT_KINDS.get(os.path.basename(path))
    try:
        return validate(payload, kind=expected)
    except SchemaError as exc:
        raise SchemaError(f"{path}: {exc}") from None


def iter_schema_summary() -> Iterable[Dict[str, object]]:
    """One row per registered kind (the ``GET /v1/schemas`` payload)."""
    for kind in sorted(SCHEMAS):
        yield {"kind": kind, "versions": sorted(SCHEMAS[kind])}
