"""The unified, layered options model — one dataclass hierarchy.

Historically the project grew two divergent option types: the
engine-style :class:`TpgOptions` (generation tunables only) and the
campaign-style :class:`CampaignOptions` (generation tunables plus
schedule, execution, and persistence knobs), with ad-hoc field copying
between them.  This module replaces both with a single hierarchy in
which each layer adds one concern:

``GenerationOptions``
    the paper's engine tunables — word length ``L``, backtrack limit,
    fault dropping, mode ablations, implication strength, simulator
    backend.  This is the layer that determines *per-fault outcomes*
    together with the schedule.
``ScheduleOptions``
    adds the campaign round schedule: ``shards`` batches per drop
    round and the pending-``window`` bound.  Results depend on these
    (they are part of the schedule semantics) but never on anything
    below.
``ExecutionOptions``
    adds ``workers`` — how many OS processes execute a round's
    shards.  Never changes outcomes, only wall-clock.
``PersistenceOptions``
    adds checkpoint/resume, incremental compaction cadence, and
    record retention.
``BistOptions``
    adds the pseudorandom BIST workload knobs — LFSR width/kind/seed,
    phase-shifter spread, MISR width, window/budget/target-coverage
    stopping rule (read only by ``AtpgSession.bist``).
``Options``
    the full model; what :class:`repro.api.AtpgSession` and the
    service accept everywhere.

Engine mode is not a separate type anymore: ``Options.engine_mode()``
is a 1-worker, unbounded-window view of the same object — exactly the
campaign the legacy serial engine always was.

The legacy names survive as deprecated aliases: ``TpgOptions`` (in
:mod:`repro.core.engine`) subclasses :class:`GenerationOptions` and
``CampaignOptions`` (in :mod:`repro.campaign.report`) subclasses
:class:`Options`; both warn on construction and otherwise behave
identically, so every old call site keeps working.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Dict, Optional

from ..logic.words import DEFAULT_WORD_LENGTH

#: Schedule constant shared by the engine-mode view and the default
#: campaign: generation batches per drop round.  Rounds are barriers —
#: batches inside one round are generated independently (possibly on
#: different workers), then the drop bus runs once over the merged
#: fresh patterns.  Because the schedule depends only on options, the
#: per-fault outcome is identical for every worker count.
DEFAULT_SHARDS = 2


@dataclass
class GenerationOptions:
    """Layer 1 — the combined FPTPG/APTPG engine tunables.

    Attributes:
        width: machine word length ``L`` (lanes).
        backtrack_limit: APTPG backtracks before aborting a fault.
        drop_faults: run PPSFP after every generation round and drop
            collaterally detected faults (paper Section 5).
        use_fptpg / use_aptpg: ablation switches; disabling FPTPG
            sends every fault straight to APTPG and vice versa.
        unique_backward: apply unique backward implications (see
            :class:`repro.core.state.TpgState`).
        sim_backend: word backend of the PPSFP drop simulator
            (``"auto"``, ``"int"``, ``"numpy"`` or ``"native"`` — the
            compiled-C backend, which falls back to numpy with a
            one-time warning when no C toolchain is present; see
            :class:`repro.sim.delay_sim.DelayFaultSimulator`).  Never
            outcome-relevant: every backend is bit-identical.
        fusion: plan execution strategy of every hot simulation loop —
            ``"interp"`` (per-gate interpreter, the oracle),
            ``"vector"`` (level-vectorized numpy groups), ``"codegen"``
            (straight-line compiled bodies) or ``"auto"`` (the fastest
            supported strategy per backend; the default).  Never
            outcome-relevant: all strategies are bit-identical and the
            test suite asserts it.
    """

    width: int = DEFAULT_WORD_LENGTH
    backtrack_limit: int = 64
    drop_faults: bool = True
    use_fptpg: bool = True
    use_aptpg: bool = True
    unique_backward: bool = True
    sim_backend: str = "auto"
    fusion: str = "auto"

    def validate(self) -> None:
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if self.backtrack_limit < 0:
            raise ValueError("backtrack_limit must be >= 0")
        from ..kernel import BACKEND_MODES, FUSION_MODES  # lazy: avoid cycles

        if self.sim_backend not in BACKEND_MODES:
            raise ValueError(
                f"unknown sim_backend {self.sim_backend!r} "
                f"(choose from {BACKEND_MODES})"
            )

        if self.fusion not in FUSION_MODES:
            raise ValueError(f"unknown fusion strategy {self.fusion!r}")


@dataclass
class ScheduleOptions(GenerationOptions):
    """Layer 2 — the campaign round schedule (outcome-relevant).

    Attributes:
        shards: batches per FPTPG round / faults per APTPG round.
            Part of the schedule semantics (like ``width``): results
            depend on it, but never on ``workers``.
        window: peak number of *unsettled* faults held in memory, or
            ``None`` for unbounded (the engine-compatible mode: the
            whole universe is admitted up front).
    """

    shards: int = DEFAULT_SHARDS
    window: Optional[int] = None

    def validate(self) -> None:
        super().validate()
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.window is not None and self.window < self.width:
            raise ValueError(
                f"window ({self.window}) must be >= width ({self.width})"
            )


@dataclass
class ExecutionOptions(ScheduleOptions):
    """Layer 3 — execution strategy (never outcome-relevant).

    Attributes:
        workers: OS processes executing a round's shards.  ``1`` runs
            in-process; ``>= 2`` spawns a multiprocessing pool whose
            workers each rebuild the compiled circuit once.
        shard_deadline_s: per-shard wall-clock deadline of the worker
            supervisor.  A shard whose result hasn't arrived by then
            is presumed lost (hung, or its worker process died); the
            pool is rebuilt and the shard resubmitted.  ``None``
            disables the watchdog.
        shard_attempts: submission attempts per shard before the
            supervisor quarantines it (its faults settle as
            ``skipped_error`` with an error envelope instead of
            crashing the campaign).
        retry_base_ms: exponential-backoff base between retries of a
            *raising* shard (attempt ``n`` waits ``retry_base_ms *
            2**(n-1)`` plus deterministic jitter; ``0`` disables the
            wait).

    Supervision knobs bound *how failures are absorbed*; like
    ``workers`` they never change per-fault outcomes — a retried shard
    regenerates bit-identically, and quarantine only ever *removes*
    faults from the report's detected set.
    """

    workers: int = 1
    shard_deadline_s: Optional[float] = None
    shard_attempts: int = 3
    retry_base_ms: float = 50.0
    #: JSON fault-injection schedule (see :mod:`repro.chaos`); the
    #: campaign runner installs it process-wide before the first round.
    #: Test/CI-only — the service scrubs it from tenant requests.
    chaos: Optional[str] = None

    def validate(self) -> None:
        super().validate()
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.shard_deadline_s is not None and self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be > 0 (or None)")
        if self.shard_attempts < 1:
            raise ValueError("shard_attempts must be >= 1")
        if self.retry_base_ms < 0:
            raise ValueError("retry_base_ms must be >= 0")
        if self.chaos is not None:
            from .. import chaos as chaos_module  # lazy: avoid cycles

            chaos_module.ChaosController(self.chaos)  # raises on bad spec


@dataclass
class PersistenceOptions(ExecutionOptions):
    """Layer 4 — durability and memory management.

    Attributes:
        checkpoint: path of the JSON checkpoint file (``None``
            disables checkpointing).
        checkpoint_every: write the checkpoint every this many rounds.
        resume: load *checkpoint* if it exists and continue from it.
        compact_every: run incremental reverse-order compaction on the
            retained pattern set whenever it has grown by this many
            patterns since the last pass (``None`` disables it).
        keep_records: retain full :class:`repro.core.results.
            FaultRecord` objects.  Disable for huge campaigns where
            only statuses and the pattern set are needed.
    """

    checkpoint: Optional[str] = None
    checkpoint_every: int = 16
    resume: bool = False
    compact_every: Optional[int] = None
    keep_records: bool = True

    def validate(self) -> None:
        super().validate()
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


@dataclass
class BistOptions(PersistenceOptions):
    """Layer 5 — the pseudorandom BIST workload (`AtpgSession.bist`).

    Attributes:
        bist_width: LFSR register width; must be in the
            known-primitive table unless *bist_polynomial* is given.
        bist_kind: register form, ``"fibonacci"`` or ``"galois"``.
        bist_polynomial: characteristic-polynomial override (``None``
            = the table's primitive polynomial for *bist_width*).
        bist_seed: nonzero LFSR seed.
        bist_phase_spread: phase-shifter offset step fanning the
            register out to the circuit's input count.
        misr_width: signature register width (the aliasing exponent:
            escape probability ``2**-misr_width``).
        bist_window: patterns per simulation window — one kernel call,
            one coverage-curve point, one progress report each.
        bist_max_patterns: hard pattern budget.
        bist_target_coverage: stop once detected/faults reaches this
            fraction (``None`` = run out the budget).
    """

    bist_width: int = 32
    bist_kind: str = "fibonacci"
    bist_polynomial: Optional[int] = None
    bist_seed: int = 1
    bist_phase_spread: int = 1
    misr_width: int = 32
    bist_window: int = 256
    bist_max_patterns: int = 4096
    bist_target_coverage: Optional[float] = None

    def validate(self) -> None:
        super().validate()
        from ..bist.lfsr import (  # lazy: avoid cycles
            LFSR_KINDS,
            PRIMITIVE_POLYNOMIALS,
            default_polynomial,
        )

        if self.bist_kind not in LFSR_KINDS:
            raise ValueError(
                f"unknown bist_kind {self.bist_kind!r} (choose from {LFSR_KINDS})"
            )
        if self.bist_polynomial is None:
            default_polynomial(self.bist_width)  # raises for unknown widths
        elif self.bist_polynomial.bit_length() - 1 != self.bist_width:
            raise ValueError(
                f"bist_polynomial degree {self.bist_polynomial.bit_length() - 1} "
                f"!= bist_width {self.bist_width}"
            )
        if not 1 <= self.bist_seed < (1 << self.bist_width):
            raise ValueError(
                f"bist_seed must be nonzero and fit {self.bist_width} bits"
            )
        if self.bist_phase_spread < 1:
            raise ValueError("bist_phase_spread must be >= 1")
        if self.misr_width not in PRIMITIVE_POLYNOMIALS:
            known = ", ".join(str(w) for w in sorted(PRIMITIVE_POLYNOMIALS))
            raise ValueError(
                f"misr_width must be a table width ({known}), got {self.misr_width}"
            )
        if self.bist_window < 1:
            raise ValueError("bist_window must be >= 1")
        if self.bist_max_patterns < 1:
            raise ValueError("bist_max_patterns must be >= 1")
        if self.bist_target_coverage is not None and not (
            0.0 < self.bist_target_coverage <= 1.0
        ):
            raise ValueError("bist_target_coverage must be in (0, 1]")


@dataclass
class Options(BistOptions):
    """The full unified options model — every workload reads this.

    ``Options()`` with no arguments is the production default: the
    bit-parallel engine at the native word length, fault dropping on,
    one worker, unbounded window, no persistence.
    """

    # ------------------------------------------------------------ views
    def engine_mode(self) -> "Options":
        """The serial-engine view: a 1-worker, unbounded-window campaign.

        This is what ``AtpgSession.generate`` (and the legacy
        ``generate_tests`` shim) runs: same generation layer, default
        schedule, no parallelism — exactly the historical engine.
        """
        return dataclasses.replace(
            self, workers=1, window=None, checkpoint=None, resume=False
        )

    def merged(self, **overrides) -> "Options":
        """A copy with keyword *overrides* applied (unknown keys raise)."""
        return dataclasses.replace(self, **overrides)

    # ------------------------------------------------------------ adoption
    @classmethod
    def adopt(cls, other: object, **overrides) -> "Options":
        """Lift any options-like object into a full :class:`Options`.

        Accepts an :class:`Options` (or subclass, e.g. the deprecated
        ``CampaignOptions``), a bare :class:`GenerationOptions` layer
        (e.g. the deprecated ``TpgOptions``), or ``None``.  Fields the
        source does not define fall back to defaults; *overrides* win
        over everything.
        """
        values: Dict[str, object] = {}
        if other is not None:
            for f in fields(cls):
                if hasattr(other, f.name):
                    values[f.name] = getattr(other, f.name)
        values.update(overrides)
        return cls(**values)

    # ------------------------------------------------------------ layers
    def layers(self) -> Dict[str, Dict[str, object]]:
        """The model split by layer (the wire format of ``api.serde``)."""
        names = {
            "generation": fields(GenerationOptions),
            "schedule": _own_fields(ScheduleOptions, GenerationOptions),
            "execution": _own_fields(ExecutionOptions, ScheduleOptions),
            "persistence": _own_fields(PersistenceOptions, ExecutionOptions),
            "bist": _own_fields(BistOptions, PersistenceOptions),
        }
        return {
            layer: {f.name: getattr(self, f.name) for f in layer_fields}
            for layer, layer_fields in names.items()
        }

    @classmethod
    def from_layers(cls, layers: Dict[str, Dict[str, object]]) -> "Options":
        """Inverse of :meth:`layers`; unknown layers or fields raise."""
        known = {f.name for f in fields(cls)}
        values: Dict[str, object] = {}
        for layer, entries in layers.items():
            if layer not in (
                "generation", "schedule", "execution", "persistence", "bist"
            ):
                raise ValueError(f"unknown options layer {layer!r}")
            for name, value in entries.items():
                if name not in known:
                    raise ValueError(f"unknown option {name!r} in {layer!r}")
                values[name] = value
        return cls(**values)


def _own_fields(cls, base):
    inherited = {f.name for f in fields(base)}
    return [f for f in fields(cls) if f.name not in inherited]


@dataclass
class ServiceOptions:
    """Host-side knobs of the multi-tenant service (``tip serve``).

    Deliberately *not* part of the :class:`Options` hierarchy: these
    configure the serving host (scheduling, admission control,
    durability location), never the ATPG computation — no field here
    can change any per-fault outcome, and none of them travel on the
    wire.

    Attributes:
        workers: job-queue worker threads draining async campaigns.
        max_queue: queued-job bound; submissions beyond it are refused
            with HTTP 429 + ``Retry-After`` (backpressure).
        coalesce_window_ms: how long the first simulate/grade request
            of a batch waits for same-circuit followers before
            executing one merged lane slab.  ``0`` disables
            coalescing.
        jobs_dir: directory for job records and campaign checkpoints;
            ``None`` keeps jobs in memory only (no restart recovery).
        max_sessions: lowered circuits kept in the LRU session cache.
        max_jobs_per_tenant: active (queued + running) jobs one tenant
            may hold at once; ``0`` = unlimited.
    """

    workers: int = 2
    max_queue: int = 32
    coalesce_window_ms: float = 0.0
    jobs_dir: Optional[str] = None
    max_sessions: int = 8
    max_jobs_per_tenant: int = 0

    def validate(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.coalesce_window_ms < 0:
            raise ValueError("coalesce_window_ms must be >= 0")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.max_jobs_per_tenant < 0:
            raise ValueError("max_jobs_per_tenant must be >= 0")
