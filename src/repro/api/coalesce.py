"""Request coalescing: many tenants, one shared lane slab.

The paper's core idea — pack many patterns into the bit lanes of one
machine word so a single pass simulates all of them — applies across
*requests* just as well as within one.  Concurrent simulate/grade
requests that resolve to the same structural circuit under the same
test class are independent pattern batches against the same compiled
kernel; running them one by one under-fills the lanes and serializes
kernel calls behind the GIL.  The :class:`Coalescer` merges them:

1. The first request for a key ``(circuit hash, test class, verb)``
   opens a *batch* and becomes its **leader**; it waits up to the
   coalescing window for followers.
2. Followers that arrive inside the window append their packed
   patterns and fault lists to the batch and block on its event.
3. When the window closes, the leader concatenates every member's
   :class:`repro.kernel.PackedPatterns` into one word-aligned lane
   slab (:meth:`PackedPatterns.concat`), deduplicates the fault union,
   executes **one** backend call over the merged slab, and
   demultiplexes the per-fault lane masks back to each member with
   :func:`repro.logic.words.extract_lanes`.

Demultiplexed masks are bit-identical to per-request execution: the
plane calculus is lanewise, batches sit at word-aligned offsets, and
each member only ever reads its own lanes (the inter-batch padding
lanes pack as stable all-zero vectors, which cannot launch a
transition).  The test suite asserts this.

The coalescer is transport-free and knows nothing about HTTP — the
service dispatcher routes eligible requests through :meth:`run`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Sequence, Tuple

from ..kernel import PackedPatterns
from ..logic.words import extract_lanes
from ..paths import PathDelayFault


class _Member:
    """One request's contribution to (and result slot in) a batch."""

    __slots__ = ("packed", "faults", "masks")

    def __init__(self, packed: PackedPatterns, faults: List[PathDelayFault]):
        self.packed = packed
        self.faults = faults
        self.masks: List[int] = []


class _Batch:
    """One open coalescing window's members and completion event."""

    __slots__ = ("members", "done", "error")

    def __init__(self) -> None:
        self.members: List[_Member] = []
        self.done = threading.Event()
        self.error: BaseException | None = None


#: ``execute(merged_patterns, merged_faults) -> masks`` — one backend
#: call over the shared slab; masks are index-aligned with the faults.
ExecuteFn = Callable[[PackedPatterns, List[PathDelayFault]], Sequence[int]]


class Coalescer:
    """Merge concurrent same-circuit batches into shared lane slabs.

    Args:
        window_ms: how long the first request of a batch waits for
            followers before executing.  ``0`` disables coalescing
            entirely (every request executes alone, no added latency).
    """

    def __init__(self, window_ms: float = 0.0):
        if window_ms < 0:
            raise ValueError("window_ms must be >= 0")
        self.window_ms = window_ms
        self._lock = threading.Lock()
        self._open: Dict[Tuple, _Batch] = {}
        # stats: batches executed, requests seen, requests that shared
        # a slab with at least one other request
        self.batches = 0
        self.requests = 0
        self.merged_requests = 0

    @property
    def enabled(self) -> bool:
        return self.window_ms > 0

    # ------------------------------------------------------------------
    def run(
        self,
        key: Tuple,
        patterns: Sequence,
        faults: Sequence[PathDelayFault],
        execute: ExecuteFn,
    ) -> List[int]:
        """Execute one request's batch, possibly merged with others.

        Returns this request's per-fault lane masks, index-aligned
        with *faults*, bit-identical to ``execute`` on the request
        alone.  *patterns* may be a pattern sequence or a pre-built
        :class:`PackedPatterns`.
        """
        with self._lock:
            self.requests += 1
        if not self.enabled or not patterns or not faults:
            packed = (
                patterns
                if isinstance(patterns, PackedPatterns)
                else PackedPatterns.from_patterns(list(patterns))
                if patterns
                else None
            )
            if packed is None:
                return [0] * len(faults)
            with self._lock:
                self.batches += 1
            return list(execute(packed, list(faults)))
        packed = (
            patterns
            if isinstance(patterns, PackedPatterns)
            else PackedPatterns.from_patterns(list(patterns))
        )
        member = _Member(packed, list(faults))
        with self._lock:
            batch = self._open.get(key)
            if batch is not None:
                batch.members.append(member)
                follower = True
            else:
                batch = _Batch()
                batch.members.append(member)
                self._open[key] = batch
                follower = False
        if follower:
            batch.done.wait()
            if batch.error is not None:
                raise batch.error
            return member.masks
        # leader: hold the window open, then close, merge, execute
        time.sleep(self.window_ms / 1000.0)
        with self._lock:
            if self._open.get(key) is batch:
                del self._open[key]
            members = list(batch.members)
        try:
            self._execute_merged(members, execute)
        except BaseException as exc:
            batch.error = exc
            raise
        finally:
            with self._lock:
                self.batches += 1
                if len(members) > 1:
                    self.merged_requests += len(members)
            batch.done.set()
        return member.masks

    # ------------------------------------------------------------------
    def _execute_merged(
        self, members: List[_Member], execute: ExecuteFn
    ) -> None:
        """One backend call over the merged slab, demuxed per member."""
        if len(members) == 1:
            member = members[0]
            member.masks = list(execute(member.packed, member.faults))
            return
        merged, offsets = PackedPatterns.concat([m.packed for m in members])
        fault_index: Dict[PathDelayFault, int] = {}
        merged_faults: List[PathDelayFault] = []
        for member in members:
            for fault in member.faults:
                if fault not in fault_index:
                    fault_index[fault] = len(merged_faults)
                    merged_faults.append(fault)
        masks = list(execute(merged, merged_faults))
        for member, offset in zip(members, offsets):
            width = member.packed.n_patterns
            member.masks = [
                extract_lanes(masks[fault_index[fault]], offset, width)
                for fault in member.faults
            ]

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "batches": self.batches,
                "requests": self.requests,
                "merged_requests": self.merged_requests,
            }
