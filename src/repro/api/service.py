"""The service endpoint: typed requests in, versioned payloads out.

Two layers:

* :class:`AtpgService` — a long-lived, transport-free dispatcher.
  Typed request dataclasses (:class:`GenerateRequest`,
  :class:`CampaignRequest`, :class:`SimulateRequest`,
  :class:`GradeRequest`, :class:`PathsRequest`) map 1:1 onto
  :class:`repro.api.AtpgSession` methods; results come back as
  :class:`Response` objects carrying schema-stamped JSON payloads.
  Sessions are cached in an LRU keyed by the circuit's structural
  hash, so repeated requests against the same netlist — whatever
  transport or spec spelling they arrive through — skip re-lowering
  the compiled kernel.
* :func:`make_server` / :func:`run_server` — a stdlib
  ``http.server`` JSON transport over the dispatcher: ``POST
  /v1/<verb>`` with an enveloped request body, ``GET /v1/health`` and
  ``GET /v1/schemas`` for introspection.  The CLI front end is
  ``tip serve``.

Every request and response body is validated against
:mod:`repro.api.schemas`; a request with an unknown
``schema_version`` is rejected with HTTP 400 before any work runs.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple, Union

from ..circuit import Circuit
from ..core.patterns import TestPattern
from ..paths import PathDelayFault, TestClass
from . import serde
from .options import Options
from .resolve import ResolutionError, resolve_circuit_request, resolve_test_class
from .schemas import SchemaError, iter_schema_summary, stamp, validate
from .session import AtpgSession

__version_tag__ = "v1"

#: Default TCP port of ``tip serve`` (spells "TIP" on a phone keypad).
DEFAULT_PORT = 8470


# ---------------------------------------------------------------------------
# typed requests / response
# ---------------------------------------------------------------------------


@dataclass
class _CircuitRequest:
    """Shared transport fields: how a request names its circuit."""

    circuit: Optional[str] = None  # a spec: file / embedded / suite name
    bench: Optional[str] = None  # inline netlist text
    scale: int = 1
    test_class: Union[str, TestClass] = TestClass.NONROBUST


@dataclass
class GenerateRequest(_CircuitRequest):
    """Engine-mode generation (``AtpgSession.generate``)."""

    options: Optional[Options] = None
    max_faults: Optional[int] = None
    strategy: str = "all"
    include_patterns: bool = False

    verb = "generate"


@dataclass
class CampaignRequest(_CircuitRequest):
    """Staged campaign over the streamed universe (``.campaign``)."""

    options: Optional[Options] = None
    max_faults: Optional[int] = None
    min_length: Optional[int] = None
    max_length: Optional[int] = None

    verb = "campaign"


@dataclass
class SimulateRequest(_CircuitRequest):
    """Batched PPSFP detection masks (``.simulate``)."""

    patterns: List[TestPattern] = field(default_factory=list)
    faults: List[PathDelayFault] = field(default_factory=list)

    verb = "simulate"


@dataclass
class GradeRequest(_CircuitRequest):
    """Pattern-set coverage grading (``.grade``)."""

    patterns: List[TestPattern] = field(default_factory=list)
    faults: List[PathDelayFault] = field(default_factory=list)

    verb = "grade"


@dataclass
class PathsRequest(_CircuitRequest):
    """Structural path statistics (``.paths``)."""

    histogram: bool = False
    limit: Optional[int] = None

    verb = "paths"


Request = Union[
    GenerateRequest, CampaignRequest, SimulateRequest, GradeRequest, PathsRequest
]


@dataclass
class Response:
    """Dispatcher outcome: a schema-stamped payload or an error.

    ``payload`` is the enveloped result body (``repro/<kind>``) on
    success, or an error body on failure; ``envelope()`` wraps either
    into the ``repro/response`` wire shape the HTTP layer sends.
    """

    ok: bool
    payload: Dict
    status: int = 200

    def envelope(self) -> Dict:
        body = {"ok": self.ok}
        if self.ok:
            body["result"] = self.payload
        else:
            body["error"] = self.payload
        return stamp("repro/response", body)


# ---------------------------------------------------------------------------
# request decoding (wire -> typed dataclass)
# ---------------------------------------------------------------------------

_REQUEST_TYPES: Dict[str, type] = {
    cls.verb: cls
    for cls in (
        GenerateRequest,
        CampaignRequest,
        SimulateRequest,
        GradeRequest,
        PathsRequest,
    )
}


def request_from_payload(verb: str, payload: Dict) -> Request:
    """Decode one enveloped JSON request body into its typed form."""
    import dataclasses

    cls = _REQUEST_TYPES.get(verb)
    if cls is None:
        raise SchemaError(
            f"unknown verb {verb!r} (known: {sorted(_REQUEST_TYPES)})"
        )
    validate(payload, kind=f"repro/request.{verb}")
    names = {f.name for f in dataclasses.fields(cls)}
    values = {
        key: payload[key]
        for key in ("circuit", "bench", "scale", "test_class")
        if key in payload
    }
    if "options" in payload and "options" in names:
        values["options"] = serde.options_from_payload(
            payload["options"], envelope=False
        )
    for key in (
        "max_faults",
        "strategy",
        "include_patterns",
        "min_length",
        "max_length",
        "histogram",
        "limit",
    ):
        if key in payload and key in names:
            values[key] = payload[key]
    if "patterns" in payload and "patterns" in names:
        values["patterns"] = [
            serde.pattern_from_payload(p, envelope=False)
            for p in payload["patterns"]
        ]
    if "faults" in payload and "faults" in names:
        values["faults"] = [
            serde.fault_from_payload(f, envelope=False) for f in payload["faults"]
        ]
    return cls(**values)


# ---------------------------------------------------------------------------
# the dispatcher
# ---------------------------------------------------------------------------


class AtpgService:
    """Transport-free request dispatcher with a bounded session cache.

    Args:
        max_sessions: circuits kept lowered at once; the least
            recently used session is evicted beyond that.
    """

    def __init__(self, max_sessions: int = 8):
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[str, AtpgSession]" = OrderedDict()
        # transport key (spec+scale / bench-text hash) -> structural
        # fingerprint, so repeat requests skip circuit re-construction,
        # not just re-lowering
        self._by_transport: "OrderedDict[Tuple, str]" = OrderedDict()
        # ThreadingHTTPServer handles requests on worker threads; every
        # cache/counter access goes through this lock
        self._lock = threading.Lock()
        self.requests_served = 0
        self.sessions_opened = 0

    # ------------------------------------------------------------ sessions
    def session_for(self, circuit: Circuit) -> AtpgSession:
        """The cached session for this structure (lowering at most once)."""
        from .resolve import circuit_fingerprint

        key = circuit_fingerprint(circuit)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                return session
        # lower outside the lock (it can take a while on big circuits);
        # a concurrent first request for the same circuit may lower
        # twice, but the cache stays consistent and one copy wins
        session = AtpgSession(circuit)
        with self._lock:
            if key not in self._sessions:
                self._sessions[key] = session
                self.sessions_opened += 1
                while len(self._sessions) > self.max_sessions:
                    self._sessions.popitem(last=False)
            self._sessions.move_to_end(key)
            return self._sessions[key]

    def _transport_key(self, request: _CircuitRequest):
        if request.bench is not None:
            return ("bench", hashlib.sha256(request.bench.encode()).hexdigest())
        if request.circuit is not None and request.circuit.endswith(".bench"):
            return None  # a file on disk can change; always re-read it
        return ("spec", request.circuit, request.scale)

    def _resolve_session(self, request: _CircuitRequest) -> AtpgSession:
        key = self._transport_key(request)
        if key is not None:
            with self._lock:
                fingerprint = self._by_transport.get(key)
                session = (
                    self._sessions.get(fingerprint)
                    if fingerprint is not None
                    else None
                )
                if session is not None:
                    self._sessions.move_to_end(fingerprint)
                    return session
        circuit = resolve_circuit_request(
            spec=request.circuit, bench=request.bench, scale=request.scale
        )
        session = self.session_for(circuit)
        if key is not None:
            with self._lock:
                self._by_transport[key] = session.circuit_hash
                while len(self._by_transport) > 4 * self.max_sessions:
                    self._by_transport.popitem(last=False)
        return session

    # ------------------------------------------------------------ dispatch
    def handle(self, request: Request) -> Response:
        """Dispatch one typed request; never raises for request errors.

        Client-caused failures (schema/resolution/validation) map to
        400; anything else is a server fault and maps to 500 with the
        exception type only (no internal detail leaks to the wire).
        """
        try:
            session = self._resolve_session(request)
            payload = self._dispatch(session, request)
            with self._lock:
                self.requests_served += 1
            return Response(ok=True, payload=payload)
        except (SchemaError, ResolutionError, ValueError) as exc:
            return Response(
                ok=False,
                payload={"error": type(exc).__name__, "detail": str(exc)},
                status=400,
            )
        except Exception as exc:  # noqa: BLE001 - the transport boundary
            return Response(
                ok=False,
                payload={
                    "error": "InternalError",
                    "detail": type(exc).__name__,
                },
                status=500,
            )

    def _dispatch(self, session: AtpgSession, request: Request) -> Dict:
        test_class = resolve_test_class(request.test_class)
        if isinstance(request, GenerateRequest):
            report = session.generate(
                test_class=test_class,
                options=_scrub_options(request.options),
                max_faults=request.max_faults,
                strategy=request.strategy,
            )
            if not request.include_patterns:
                report = _strip_patterns(report)
            return serde.tpg_report_to_payload(report)
        if isinstance(request, CampaignRequest):
            from ..campaign.universe import FaultUniverse  # lazy: cycle

            universe = FaultUniverse.from_circuit(
                session.circuit,
                max_faults=request.max_faults,
                min_length=request.min_length,
                max_length=request.max_length,
            )
            report = session.campaign(
                universe=universe,
                test_class=test_class,
                options=_scrub_options(request.options),
            )
            return serde.campaign_report_to_payload(report)
        if isinstance(request, SimulateRequest):
            masks = session.simulate(
                request.patterns, request.faults, test_class=test_class
            )
            return stamp(
                "repro/simulate-report",
                {
                    "circuit": session.circuit.name,
                    "test_class": test_class.value,
                    "patterns": len(request.patterns),
                    "faults": len(request.faults),
                    "masks": [hex(mask) for mask in masks],
                },
            )
        if isinstance(request, GradeRequest):
            return stamp(
                "repro/grade-report",
                session.grade(
                    request.patterns, request.faults, test_class=test_class
                ),
            )
        if isinstance(request, PathsRequest):
            return stamp(
                "repro/paths-report",
                session.paths(histogram=request.histogram, limit=request.limit),
            )
        raise TypeError(f"unhandled request type {type(request).__name__}")

    # ------------------------------------------------------------ wire API
    def handle_json(self, verb: str, payload: Dict) -> Response:
        """Decode, dispatch, and envelope one wire-format request."""
        try:
            request = request_from_payload(verb, payload)
        except (SchemaError, ResolutionError) as exc:
            return Response(
                ok=False,
                payload={"error": type(exc).__name__, "detail": str(exc)},
                status=400,
            )
        return self.handle(request)

    def health(self) -> Dict:
        from .. import __version__

        with self._lock:
            sessions = [
                {"circuit": s.circuit.name, "hash": key[:12]}
                for key, s in self._sessions.items()
            ]
            served = self.requests_served
        return {
            "status": "ok",
            "version": __version__,
            "requests_served": served,
            "sessions": sessions,
        }


def _scrub_options(options: Optional[Options]) -> Optional[Options]:
    """Drop server-side persistence from wire-supplied options.

    A request must never steer the server's filesystem: checkpoint
    paths (arbitrary file writes) and resume (arbitrary file reads)
    are host decisions, not request parameters.
    """
    if options is None:
        return None
    return Options.adopt(options, checkpoint=None, resume=False)


def _strip_patterns(report):
    """Drop per-record patterns from a TpgReport (smaller responses)."""
    from dataclasses import replace

    report.records = [
        replace(record, pattern=None) if record.pattern is not None else record
        for record in report.records
    ]
    return report


# ---------------------------------------------------------------------------
# the HTTP transport
# ---------------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    service: AtpgService  # injected by make_server
    quiet: bool = True

    # ------------------------------------------------------------ plumbing
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.quiet:  # pragma: no cover - log formatting
            super().log_message(format, *args)

    def _send(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _route(self) -> Tuple[str, str]:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) != 2 or parts[0] != __version_tag__:
            return "", ""
        return parts[0], parts[1]

    # ------------------------------------------------------------ verbs
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        _version, endpoint = self._route()
        if endpoint == "health":
            self._send(200, self.service.health())
        elif endpoint == "schemas":
            self._send(200, {"schemas": list(iter_schema_summary())})
        else:
            self._send(404, {"error": "NotFound", "detail": self.path})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        _version, verb = self._route()
        if not verb:
            self._send(404, {"error": "NotFound", "detail": self.path})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send(400, {"error": "BadRequest", "detail": str(exc)})
            return
        response = self.service.handle_json(verb, payload)
        self._send(response.status, response.envelope())


def make_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    service: Optional[AtpgService] = None,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server; ``port=0`` auto-picks."""
    service = service or AtpgService()
    handler = type("BoundHandler", (_Handler,), {"service": service, "quiet": quiet})
    return ThreadingHTTPServer((host, port), handler)


def run_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    service: Optional[AtpgService] = None,
    quiet: bool = False,
) -> None:  # pragma: no cover - blocking loop; exercised via make_server
    """Serve forever (the ``tip serve`` entry point)."""
    server = make_server(host, port, service, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    print(f"tip serve: listening on http://{bound_host}:{bound_port}/v1/")
    print("endpoints: GET /v1/health, GET /v1/schemas, POST /v1/"
          + "|".join(sorted(_REQUEST_TYPES)))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
