"""The multi-tenant service: typed requests, shared kernels, one slab.

Three layers:

* :class:`AtpgService` — a long-lived, transport-free dispatcher.
  Typed request dataclasses (:class:`GenerateRequest`,
  :class:`CampaignRequest`, :class:`SimulateRequest`,
  :class:`GradeRequest`, :class:`PathsRequest`, :class:`BistRequest`)
  map 1:1 onto
  :class:`repro.api.AtpgSession` methods; results come back as
  :class:`Response` objects carrying schema-stamped JSON payloads.
  Sessions are cached in an LRU keyed by the circuit's structural
  hash with **single-flight lowering**: concurrent first requests for
  the same netlist lower the compiled kernel exactly once while other
  circuits proceed unblocked.
* The concurrency substrate —
  :class:`repro.api.coalesce.Coalescer` merges concurrent
  simulate/grade requests against the same circuit into one shared
  :class:`repro.kernel.PackedPatterns` lane slab (one backend call,
  demultiplexed per request, bit-identical to serial), and
  :class:`repro.api.jobs.JobManager` runs campaigns and BIST runs
  asynchronously on a bounded worker pool: ``POST /v1/campaign`` (or
  ``/v1/bist``) returns a job id immediately, ``GET /v1/jobs/<id>``
  polls progress, cancel stops at the next round/window boundary, and
  a graceful shutdown parks running jobs resumably (checkpoint flush +
  ``interrupted`` state).
* :func:`make_server` / :func:`run_server` — a stdlib ``http.server``
  JSON transport over the dispatcher: ``POST /v1/<verb>`` with an
  enveloped request body; ``GET /v1/health`` (alias ``/v1/healthz``),
  ``/v1/metrics``, ``/v1/schemas``, ``/v1/jobs`` and ``/v1/jobs/<id>``
  for observation; ``POST /v1/jobs/<id>/cancel``.  Tenants identify
  themselves with the ``X-Tenant`` header; a full job queue or an
  exceeded tenant quota answers ``429`` with ``Retry-After``
  (backpressure), and every request emits one structured JSON access
  log line with timing (unless ``quiet``).  The CLI front end is
  ``tip serve``; SIGTERM/SIGINT drain the queue before exit.

Every request and response body is validated against
:mod:`repro.api.schemas`; a request with an unknown
``schema_version`` is rejected with HTTP 400 before any work runs.
"""

from __future__ import annotations

import hashlib
import json
import signal
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple, Union

from ..circuit import Circuit
from ..core.patterns import TestPattern
from ..paths import PathDelayFault, TestClass
from . import serde
from .coalesce import Coalescer
from .jobs import Job, JobManager, QuotaExceeded
from .options import Options, ServiceOptions
from .resolve import ResolutionError, resolve_circuit_request, resolve_test_class
from .schemas import SchemaError, iter_schema_summary, stamp, validate

from .session import AtpgSession

__version_tag__ = "v1"

#: Default TCP port of ``tip serve`` (spells "TIP" on a phone keypad).
DEFAULT_PORT = 8470


# ---------------------------------------------------------------------------
# typed requests / response
# ---------------------------------------------------------------------------


@dataclass
class _CircuitRequest:
    """Shared transport fields: how a request names its circuit."""

    circuit: Optional[str] = None  # a spec: file / embedded / suite name
    bench: Optional[str] = None  # inline netlist text
    scale: int = 1
    test_class: Union[str, TestClass] = TestClass.NONROBUST


@dataclass
class GenerateRequest(_CircuitRequest):
    """Engine-mode generation (``AtpgSession.generate``)."""

    options: Optional[Options] = None
    max_faults: Optional[int] = None
    strategy: str = "all"
    include_patterns: bool = False

    verb = "generate"


@dataclass
class CampaignRequest(_CircuitRequest):
    """Staged campaign over the streamed universe (``.campaign``)."""

    options: Optional[Options] = None
    max_faults: Optional[int] = None
    min_length: Optional[int] = None
    max_length: Optional[int] = None

    verb = "campaign"


@dataclass
class SimulateRequest(_CircuitRequest):
    """Batched PPSFP detection masks (``.simulate``)."""

    patterns: List[TestPattern] = field(default_factory=list)
    faults: List[PathDelayFault] = field(default_factory=list)

    verb = "simulate"


@dataclass
class GradeRequest(_CircuitRequest):
    """Pattern-set coverage grading (``.grade``)."""

    patterns: List[TestPattern] = field(default_factory=list)
    faults: List[PathDelayFault] = field(default_factory=list)

    verb = "grade"


@dataclass
class PathsRequest(_CircuitRequest):
    """Structural path statistics (``.paths``)."""

    histogram: bool = False
    limit: Optional[int] = None

    verb = "paths"


@dataclass
class BistRequest(_CircuitRequest):
    """Pseudorandom BIST run (``AtpgSession.bist``).

    Like campaigns, BIST runs are long-running and execute on the
    async job queue when submitted over HTTP (``POST /v1/bist`` →
    202 + job id with per-window progress); ``handle()`` also accepts
    it synchronously.
    """

    options: Optional[Options] = None
    fault_model: str = "stuck_at"
    max_faults: Optional[int] = None

    verb = "bist"


Request = Union[
    GenerateRequest,
    CampaignRequest,
    SimulateRequest,
    GradeRequest,
    PathsRequest,
    BistRequest,
]

#: Verbs that run on the async job queue when POSTed over HTTP.
ASYNC_VERBS = ("campaign", "bist")


@dataclass
class Response:
    """Dispatcher outcome: a schema-stamped payload or an error.

    ``payload`` is the enveloped result body (``repro/<kind>``) on
    success, or an error body on failure; ``envelope()`` wraps either
    into the ``repro/response`` wire shape the HTTP layer sends.
    ``retry_after`` (backpressure responses only) becomes the
    ``Retry-After`` header.
    """

    ok: bool
    payload: Dict
    status: int = 200
    retry_after: Optional[float] = None

    def envelope(self) -> Dict:
        body = {"ok": self.ok}
        if self.ok:
            body["result"] = self.payload
        else:
            body["error"] = self.payload
        return stamp("repro/response", body)


# ---------------------------------------------------------------------------
# request decoding (wire -> typed dataclass)
# ---------------------------------------------------------------------------

_REQUEST_TYPES: Dict[str, type] = {
    cls.verb: cls
    for cls in (
        GenerateRequest,
        CampaignRequest,
        SimulateRequest,
        GradeRequest,
        PathsRequest,
        BistRequest,
    )
}


def request_from_payload(verb: str, payload: Dict) -> Request:
    """Decode one enveloped JSON request body into its typed form."""
    import dataclasses

    cls = _REQUEST_TYPES.get(verb)
    if cls is None:
        raise SchemaError(
            f"unknown verb {verb!r} (known: {sorted(_REQUEST_TYPES)})"
        )
    validate(payload, kind=f"repro/request.{verb}")
    names = {f.name for f in dataclasses.fields(cls)}
    values = {
        key: payload[key]
        for key in ("circuit", "bench", "scale", "test_class")
        if key in payload
    }
    if "options" in payload and "options" in names:
        values["options"] = serde.options_from_payload(
            payload["options"], envelope=False
        )
    for key in (
        "max_faults",
        "strategy",
        "include_patterns",
        "min_length",
        "max_length",
        "histogram",
        "limit",
        "fault_model",
    ):
        if key in payload and key in names:
            values[key] = payload[key]
    if "patterns" in payload and "patterns" in names:
        values["patterns"] = [
            serde.pattern_from_payload(p, envelope=False)
            for p in payload["patterns"]
        ]
    if "faults" in payload and "faults" in names:
        values["faults"] = [
            serde.fault_from_payload(f, envelope=False) for f in payload["faults"]
        ]
    return cls(**values)


# ---------------------------------------------------------------------------
# the dispatcher
# ---------------------------------------------------------------------------


class AtpgService:
    """Transport-free multi-tenant dispatcher: sessions, slab, jobs.

    Args:
        max_sessions: circuits kept lowered at once; the least
            recently used session is evicted beyond that.  Shorthand
            for ``config.max_sessions`` when *config* is omitted.
        config: full host configuration (:class:`ServiceOptions`) —
            job-queue workers and bound, coalescing window, jobs
            directory, tenant quota.
    """

    def __init__(
        self,
        max_sessions: int = 8,
        *,
        config: Optional[ServiceOptions] = None,
    ):
        if config is None:
            config = ServiceOptions(max_sessions=max_sessions)
        config.validate()
        self.config = config
        self.max_sessions = config.max_sessions
        self._sessions: "OrderedDict[str, AtpgSession]" = OrderedDict()
        # transport key (spec+scale / bench-text hash) -> structural
        # fingerprint, so repeat requests skip circuit re-construction,
        # not just re-lowering
        self._by_transport: "OrderedDict[Tuple, str]" = OrderedDict()
        # requests run on arbitrary threads (HTTP workers, job workers);
        # every cache/counter access goes through this lock
        self._lock = threading.Lock()
        # single-flight lowering: one gate per in-flight fingerprint so
        # concurrent first requests for the same circuit lower once,
        # while different circuits lower concurrently
        self._lowering: Dict[str, threading.Lock] = {}
        self.requests_ok = 0
        self.requests_failed = 0
        self.sessions_opened = 0
        self.sessions_cached = 0
        # resilience counters absorbed from completed campaign reports
        # (pool-level supervision) — the job-thread restarts live on
        # the JobManager; metrics() adds the two together
        self._pool_worker_restarts = 0
        self._shard_retries = 0
        self._quarantined_shards = 0
        self.coalescer = Coalescer(config.coalesce_window_ms)
        self._jobs: Optional[JobManager] = None
        self._jobs_gate = threading.Lock()
        self._started = time.time()

    # ------------------------------------------------------------ counters
    @property
    def requests_served(self) -> int:
        """Total requests (ok + failed) — the historical counter."""
        with self._lock:
            return self.requests_ok + self.requests_failed

    # ------------------------------------------------------------ sessions
    def session_for(self, circuit: Circuit) -> AtpgSession:
        """The cached session for this structure (lowering exactly once).

        Single-flight: the first caller for a fingerprint takes that
        fingerprint's gate and lowers; concurrent callers for the
        *same* circuit block on the gate and then hit the cache, while
        callers for other circuits proceed on their own gates.
        """
        from .resolve import circuit_fingerprint

        key = circuit_fingerprint(circuit)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                self.sessions_cached += 1
                return session
            gate = self._lowering.setdefault(key, threading.Lock())
        with gate:
            with self._lock:
                session = self._sessions.get(key)
                if session is not None:  # a concurrent holder lowered it
                    self._sessions.move_to_end(key)
                    self.sessions_cached += 1
                    return session
            # lower outside the main lock (it can take a while on big
            # circuits) but inside this fingerprint's gate
            session = AtpgSession(circuit)
            with self._lock:
                self._sessions[key] = session
                self._sessions.move_to_end(key)
                self.sessions_opened += 1
                while len(self._sessions) > self.max_sessions:
                    self._sessions.popitem(last=False)
                self._lowering.pop(key, None)
                return session

    def _transport_key(self, request: _CircuitRequest):
        if request.bench is not None:
            return ("bench", hashlib.sha256(request.bench.encode()).hexdigest())
        if request.circuit is not None and request.circuit.endswith(".bench"):
            return None  # a file on disk can change; always re-read it
        return ("spec", request.circuit, request.scale)

    def _resolve_session(self, request: _CircuitRequest) -> AtpgSession:
        key = self._transport_key(request)
        if key is not None:
            with self._lock:
                fingerprint = self._by_transport.get(key)
                session = (
                    self._sessions.get(fingerprint)
                    if fingerprint is not None
                    else None
                )
                if session is not None:
                    self._sessions.move_to_end(fingerprint)
                    self.sessions_cached += 1
                    return session
        circuit = resolve_circuit_request(
            spec=request.circuit, bench=request.bench, scale=request.scale
        )
        session = self.session_for(circuit)
        if key is not None:
            with self._lock:
                self._by_transport[key] = session.circuit_hash
                while len(self._by_transport) > 4 * self.max_sessions:
                    self._by_transport.popitem(last=False)
        return session

    # ------------------------------------------------------------ dispatch
    def handle(self, request: Request, tenant: str = "anonymous") -> Response:
        """Dispatch one typed request; never raises for request errors.

        Client-caused failures (schema/resolution/validation) map to
        400, backpressure to 429 + Retry-After; anything else is a
        server fault and maps to 500 with the exception type only (no
        internal detail leaks to the wire).
        """
        try:
            session = self._resolve_session(request)
            payload = self._dispatch(session, request)
            with self._lock:
                self.requests_ok += 1
            return Response(ok=True, payload=payload)
        except QuotaExceeded as exc:
            with self._lock:
                self.requests_failed += 1
            return Response(
                ok=False,
                payload={"error": "QuotaExceeded", "detail": str(exc)},
                status=429,
                retry_after=exc.retry_after,
            )
        except (SchemaError, ResolutionError, ValueError) as exc:
            with self._lock:
                self.requests_failed += 1
            return Response(
                ok=False,
                payload={"error": type(exc).__name__, "detail": str(exc)},
                status=400,
            )
        except Exception as exc:  # noqa: BLE001 - the transport boundary
            with self._lock:
                self.requests_failed += 1
            return Response(
                ok=False,
                payload={
                    "error": "InternalError",
                    "detail": type(exc).__name__,
                },
                status=500,
            )

    def _detection_masks(
        self, session: AtpgSession, request: Request, test_class: TestClass
    ) -> List[int]:
        """Per-fault lane masks, possibly via a merged shared slab.

        Simulate *and* grade requests against the same circuit and
        test class share one coalescing key — they both reduce to the
        same PPSFP detection-mask kernel, so a simulate and a grade
        can ride the same slab.
        """
        key = (session.circuit_hash, test_class.value)
        return self.coalescer.run(
            key,
            request.patterns,
            request.faults,
            lambda packed, faults: session.resilient_masks(
                packed, faults, test_class=test_class
            ),
        )

    def _absorb_campaign_stats(self, report) -> None:
        """Fold a completed campaign's supervision counters into metrics."""
        stats = report.stats
        with self._lock:
            self._pool_worker_restarts += stats.worker_restarts
            self._shard_retries += stats.shard_retries
            self._quarantined_shards += stats.quarantined_shards

    def _dispatch(self, session: AtpgSession, request: Request) -> Dict:
        test_class = resolve_test_class(request.test_class)
        if isinstance(request, GenerateRequest):
            report = session.generate(
                test_class=test_class,
                options=_scrub_options(request.options),
                max_faults=request.max_faults,
                strategy=request.strategy,
            )
            if not request.include_patterns:
                report = _strip_patterns(report)
            return serde.tpg_report_to_payload(report)
        if isinstance(request, CampaignRequest):
            from ..campaign.universe import FaultUniverse  # lazy: cycle

            universe = FaultUniverse.from_circuit(
                session.circuit,
                max_faults=request.max_faults,
                min_length=request.min_length,
                max_length=request.max_length,
            )
            report = session.campaign(
                universe=universe,
                test_class=test_class,
                options=_scrub_options(request.options),
            )
            self._absorb_campaign_stats(report)
            return serde.campaign_report_to_payload(report)
        if isinstance(request, SimulateRequest):
            masks = self._detection_masks(session, request, test_class)
            return stamp(
                "repro/simulate-report",
                {
                    "circuit": session.circuit.name,
                    "test_class": test_class.value,
                    "patterns": len(request.patterns),
                    "faults": len(request.faults),
                    "masks": [hex(mask) for mask in masks],
                },
            )
        if isinstance(request, GradeRequest):
            masks = self._detection_masks(session, request, test_class)
            return stamp(
                "repro/grade-report",
                session.grade_from_masks(
                    masks,
                    n_patterns=len(request.patterns),
                    n_faults=len(request.faults),
                    test_class=test_class,
                ),
            )
        if isinstance(request, PathsRequest):
            return stamp(
                "repro/paths-report",
                session.paths(histogram=request.histogram, limit=request.limit),
            )
        if isinstance(request, BistRequest):
            report = session.bist(
                fault_model=request.fault_model,
                test_class=test_class,
                options=_scrub_options(request.options),
                max_faults=request.max_faults,
            )
            return serde.bist_report_to_payload(report)
        raise TypeError(f"unhandled request type {type(request).__name__}")

    # ------------------------------------------------------------ jobs
    @property
    def jobs(self) -> JobManager:
        """The async job queue (created on first use)."""
        with self._jobs_gate:
            if self._jobs is None:
                self._jobs = JobManager(
                    self._run_job,
                    workers=self.config.workers,
                    max_queue=self.config.max_queue,
                    jobs_dir=self.config.jobs_dir,
                    max_jobs_per_tenant=self.config.max_jobs_per_tenant,
                )
            return self._jobs

    def _run_job(self, job: Job, control) -> Optional[Dict]:
        """Execute one queued async job (called on a worker thread).

        Campaigns: the job's checkpoint path is a host decision (under
        the jobs directory), never a request parameter;
        ``resume=True`` makes re-runs after a cancel/restart continue
        from the flushed checkpoint instead of starting over.  BIST
        runs have no checkpoint — an interrupted run restarts from the
        LFSR seed on recovery (deterministic, so the re-run is
        bit-identical).  Returns ``None`` when the work was parked by
        a graceful shutdown.
        """
        request = request_from_payload(job.verb, job.payload)
        if isinstance(request, CampaignRequest):
            session = self._resolve_session(request)
            from ..campaign.universe import FaultUniverse  # lazy: cycle

            universe = FaultUniverse.from_circuit(
                session.circuit,
                max_faults=request.max_faults,
                min_length=request.min_length,
                max_length=request.max_length,
            )
            options = Options.adopt(_scrub_options(request.options))
            if job.checkpoint is not None:
                options = options.merged(
                    checkpoint=job.checkpoint, checkpoint_every=1, resume=True
                )
            report = session.campaign(
                universe=universe,
                test_class=resolve_test_class(request.test_class),
                options=options,
                control=control,
            )
            if not report.complete and control.should_stop():
                return None  # parked (shutdown) or stopping (cancel)
            self._absorb_campaign_stats(report)
            return serde.campaign_report_to_payload(report)
        if isinstance(request, BistRequest):
            session = self._resolve_session(request)
            report = session.bist(
                fault_model=request.fault_model,
                test_class=resolve_test_class(request.test_class),
                options=_scrub_options(request.options),
                max_faults=request.max_faults,
                control=control,
            )
            if report.stop_reason == "stopped" and control.should_stop():
                return None  # parked (shutdown) or stopping (cancel)
            return serde.bist_report_to_payload(report)
        raise TypeError(f"job verb {job.verb!r} is not executable")

    def submit_job(
        self, verb: str, payload: Dict, tenant: str = "anonymous"
    ) -> Response:
        """Validate and enqueue an async job; 202 + job record."""
        if verb not in ASYNC_VERBS:
            with self._lock:
                self.requests_failed += 1
            return Response(
                ok=False,
                payload={
                    "error": "BadRequest",
                    "detail": f"verb {verb!r} is not async (known: {ASYNC_VERBS})",
                },
                status=400,
            )
        try:
            request_from_payload(verb, payload)  # fail fast, pre-queue
        except (SchemaError, ResolutionError, ValueError) as exc:
            with self._lock:
                self.requests_failed += 1
            return Response(
                ok=False,
                payload={"error": type(exc).__name__, "detail": str(exc)},
                status=400,
            )
        try:
            job = self.jobs.submit(verb, payload, tenant=tenant)
        except QuotaExceeded as exc:
            with self._lock:
                self.requests_failed += 1
            return Response(
                ok=False,
                payload={"error": "QuotaExceeded", "detail": str(exc)},
                status=429,
                retry_after=exc.retry_after,
            )
        with self._lock:
            self.requests_ok += 1
        return Response(ok=True, payload=job.snapshot(), status=202)

    def submit_campaign(
        self, payload: Dict, tenant: str = "anonymous"
    ) -> Response:
        """Validate and enqueue an async campaign; 202 + job record."""
        return self.submit_job("campaign", payload, tenant=tenant)

    def job_response(self, job_id: str) -> Response:
        job = self.jobs.get(job_id)
        if job is None:
            return Response(
                ok=False,
                payload={"error": "NotFound", "detail": f"no job {job_id!r}"},
                status=404,
            )
        return Response(ok=True, payload=job.snapshot())

    def cancel_job(self, job_id: str) -> Response:
        job = self.jobs.cancel(job_id)
        if job is None:
            return Response(
                ok=False,
                payload={"error": "NotFound", "detail": f"no job {job_id!r}"},
                status=404,
            )
        return Response(ok=True, payload=job.snapshot())

    def job_list_response(self) -> Response:
        jobs = [job.body() for job in self.jobs.list()]
        return Response(
            ok=True, payload=stamp("repro/job-list", {"jobs": jobs})
        )

    # ------------------------------------------------------------ wire API
    def handle_json(
        self, verb: str, payload: Dict, tenant: str = "anonymous"
    ) -> Response:
        """Decode, dispatch, and envelope one wire-format request."""
        try:
            request = request_from_payload(verb, payload)
        except (SchemaError, ResolutionError) as exc:
            with self._lock:
                self.requests_failed += 1
            return Response(
                ok=False,
                payload={"error": type(exc).__name__, "detail": str(exc)},
                status=400,
            )
        return self.handle(request, tenant=tenant)

    # ------------------------------------------------------------ observe
    def health(self) -> Dict:
        from .. import __version__

        with self._lock:
            sessions = [
                {"circuit": s.circuit.name, "hash": key[:12]}
                for key, s in self._sessions.items()
            ]
            ok, failed = self.requests_ok, self.requests_failed
            opened = self.sessions_opened
        return {
            "status": "ok",
            "version": __version__,
            "requests_served": ok + failed,
            "requests_ok": ok,
            "requests_failed": failed,
            "sessions_opened": opened,
            "queue_depth": self.queue_depth(),
            "sessions": sessions,
        }

    def queue_depth(self) -> int:
        with self._jobs_gate:
            manager = self._jobs
        return 0 if manager is None else manager.queue_depth()

    def metrics(self) -> Dict:
        """The enveloped ``repro/metrics`` observability payload."""
        with self._lock:
            body: Dict = {
                "requests_ok": self.requests_ok,
                "requests_failed": self.requests_failed,
                "sessions_opened": self.sessions_opened,
                "sessions_cached": self.sessions_cached,
            }
            pool_restarts = self._pool_worker_restarts
            shard_retries = self._shard_retries
            quarantined = self._quarantined_shards
            degraded = sum(
                1 for sess in self._sessions.values() if sess.degraded
            )
        coalescer = self.coalescer.stats()
        body["requests_coalesced"] = coalescer["merged_requests"]
        body["coalescer"] = coalescer
        with self._jobs_gate:
            manager = self._jobs
        if manager is None:
            body["queue_depth"] = 0
            body["jobs"] = {
                state: 0
                for state in (
                    "queued", "running", "done",
                    "failed", "cancelled", "interrupted",
                )
            }
            body["jobs_by_verb"] = {verb: 0 for verb in ASYNC_VERBS}
            thread_restarts = 0
        else:
            body["queue_depth"] = manager.queue_depth()
            body["jobs"] = manager.counts()
            by_verb = {verb: 0 for verb in ASYNC_VERBS}
            by_verb.update(manager.verb_counts())
            body["jobs_by_verb"] = by_verb
            thread_restarts = manager.worker_restarts
        body["worker_restarts"] = thread_restarts + pool_restarts
        body["shard_retries"] = shard_retries
        body["quarantined_shards"] = quarantined
        body["degraded_circuits"] = degraded
        body["uptime_seconds"] = time.time() - self._started
        return stamp("repro/metrics", body)

    # ------------------------------------------------------------ shutdown
    def shutdown(self, timeout: float = 30.0) -> None:
        """Drain the job queue gracefully (see ``JobManager.shutdown``)."""
        with self._jobs_gate:
            manager = self._jobs
        if manager is not None:
            manager.shutdown(timeout=timeout)


def _scrub_options(options: Optional[Options]) -> Optional[Options]:
    """Drop server-side persistence from wire-supplied options.

    A request must never steer the server's filesystem: checkpoint
    paths (arbitrary file writes) and resume (arbitrary file reads)
    are host decisions, not request parameters.  Chaos specs are
    likewise host-only — a client must not be able to crash the
    server's pool workers by asking nicely.
    """
    if options is None:
        return None
    return Options.adopt(options, checkpoint=None, resume=False, chaos=None)


def _strip_patterns(report):
    """Drop per-record patterns from a TpgReport (smaller responses)."""
    from dataclasses import replace

    report.records = [
        replace(record, pattern=None) if record.pattern is not None else record
        for record in report.records
    ]
    return report


# ---------------------------------------------------------------------------
# the HTTP transport
# ---------------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    service: AtpgService  # injected by make_server
    quiet: bool = True
    # HTTP/1.1 keep-alive: clients reuse one connection across
    # requests (every response carries Content-Length, so the stdlib
    # handler can hold the socket open); cuts per-request TCP setup
    protocol_version = "HTTP/1.1"
    # the handler writes status+headers and the JSON body as separate
    # send()s; with Nagle on, the body sits in the kernel waiting for
    # the client's delayed ACK — a ~40 ms stall on every keep-alive
    # response after the first
    disable_nagle_algorithm = True

    # ------------------------------------------------------------ plumbing
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # replaced by the structured access log in _access

    def _tenant(self) -> str:
        return self.headers.get("X-Tenant", "anonymous")

    def _send(
        self,
        status: int,
        payload: Dict,
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header(
                "Retry-After", str(max(1, int(round(retry_after))))
            )
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _send_envelope(self, response: Response) -> None:
        self._send(
            response.status, response.envelope(), retry_after=response.retry_after
        )

    def _access(self, method: str, started: float) -> None:
        """One structured JSON access-log line per request (stderr)."""
        if self.quiet:  # pragma: no cover - log formatting
            return
        record = {
            "ts": round(time.time(), 3),
            "method": method,
            "path": self.path,
            "status": getattr(self, "_status", 0),
            "tenant": self._tenant(),
            "duration_ms": round((time.monotonic() - started) * 1000.0, 3),
        }
        print(json.dumps(record), file=sys.stderr, flush=True)

    def _route(self) -> List[str]:
        """Path segments under the version prefix ([] = no match)."""
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if not parts or parts[0] != __version_tag__:
            return []
        return parts[1:]

    # ------------------------------------------------------------ verbs
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        started = time.monotonic()
        parts = self._route()
        if parts in (["health"], ["healthz"]):
            self._send(200, self.service.health())
        elif parts == ["metrics"]:
            self._send(200, self.service.metrics())
        elif parts == ["schemas"]:
            self._send(200, {"schemas": list(iter_schema_summary())})
        elif parts == ["jobs"]:
            self._send_envelope(self.service.job_list_response())
        elif len(parts) == 2 and parts[0] == "jobs":
            self._send_envelope(self.service.job_response(parts[1]))
        else:
            self._send(404, {"error": "NotFound", "detail": self.path})
        self._access("GET", started)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        started = time.monotonic()
        parts = self._route()
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            self._send_envelope(self.service.cancel_job(parts[1]))
            self._access("POST", started)
            return
        if len(parts) != 1:
            self._send(404, {"error": "NotFound", "detail": self.path})
            self._access("POST", started)
            return
        verb = parts[0]
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send(400, {"error": "BadRequest", "detail": str(exc)})
            self._access("POST", started)
            return
        if verb in ASYNC_VERBS:
            # campaigns and BIST runs are long-running: async job
            # submission (202 + job id; poll GET /v1/jobs/<id>)
            response = self.service.submit_job(
                verb, payload, tenant=self._tenant()
            )
        else:
            response = self.service.handle_json(
                verb, payload, tenant=self._tenant()
            )
        self._send_envelope(response)
        self._access("POST", started)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # dozens of clients may connect in the same instant (the load
    # generator does exactly that); the stdlib default listen backlog
    # of 5 drops the rest into 1-second SYN retransmits
    request_queue_size = 128


def make_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    service: Optional[AtpgService] = None,
    quiet: bool = True,
    config: Optional[ServiceOptions] = None,
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server; ``port=0`` auto-picks."""
    service = service or AtpgService(config=config)
    handler = type("BoundHandler", (_Handler,), {"service": service, "quiet": quiet})
    server = _Server((host, port), handler)
    server.service = service  # type: ignore[attr-defined] - convenience
    return server


def run_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    service: Optional[AtpgService] = None,
    quiet: bool = False,
    config: Optional[ServiceOptions] = None,
) -> None:  # pragma: no cover - blocking loop; exercised via make_server
    """Serve forever (the ``tip serve`` entry point).

    SIGTERM and SIGINT trigger a graceful drain: the HTTP loop stops
    accepting, running campaign jobs flush their checkpoints and park
    as ``interrupted``, queued jobs persist — a restart over the same
    ``--jobs-dir`` resumes them.
    """
    server = make_server(host, port, service, quiet=quiet, config=config)
    service = server.service  # type: ignore[attr-defined]
    bound_host, bound_port = server.server_address[:2]
    print(f"tip serve: listening on http://{bound_host}:{bound_port}/v1/")
    print(
        "endpoints: GET /v1/health|healthz|metrics|schemas|jobs|jobs/<id>, "
        "POST /v1/" + "|".join(sorted(_REQUEST_TYPES))
        + " (campaign/bist are async: poll /v1/jobs/<id>), "
        "POST /v1/jobs/<id>/cancel"
    )

    def _drain(signum, _frame):  # pragma: no cover - signal path
        print(f"\ntip serve: {signal.Signals(signum).name} received, draining")
        # serve_forever blocks this (main) thread; shutdown() must be
        # called from another thread or it deadlocks
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _drain)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - belt and braces
        pass
    finally:
        service.shutdown()  # park running jobs resumably, persist queue
        server.server_close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        print("tip serve: stopped")
