"""Serialization — object ↔ versioned JSON payload, one round-trip law.

Every codec here obeys ``from_payload(to_payload(x)) == x`` (asserted
property-based in ``tests/test_serde.py``): path delay faults, test
patterns, circuits, the unified options model, and both report types
round-trip through the wire format declared in
:mod:`repro.api.schemas`.  The service, the checkpoint files, and the
benchmark artifacts all speak payloads from this module, so there is
exactly one JSON shape per artifact — with an explicit
``schema``/``schema_version`` envelope.

The generic entry points :func:`dump` / :func:`load` dispatch on
object type / declared schema kind; both validate against the
registry, so a payload that drifted from its declared version never
round-trips silently.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..circuit import Circuit
from ..core.patterns import TestPattern
from ..core.results import FaultRecord, FaultStatus, TpgReport
from ..paths import PathDelayFault, TestClass, Transition
from .options import Options
from .schemas import SchemaError, stamp, validate

__all__ = [
    "dump",
    "load",
    "fault_to_payload",
    "fault_from_payload",
    "pattern_to_payload",
    "pattern_from_payload",
    "circuit_to_payload",
    "circuit_from_payload",
    "options_to_payload",
    "options_from_payload",
    "tpg_report_to_payload",
    "tpg_report_from_payload",
    "campaign_report_to_payload",
    "campaign_report_from_payload",
    "bist_report_to_payload",
    "bist_report_from_payload",
]


# ---------------------------------------------------------------------------
# faults and patterns
# ---------------------------------------------------------------------------


def fault_to_payload(fault: PathDelayFault, envelope: bool = True) -> Dict:
    body = {"signals": list(fault.signals), "transition": fault.transition.value}
    return stamp("repro/fault", body) if envelope else body


def fault_from_payload(payload: Dict, envelope: bool = True) -> PathDelayFault:
    if envelope:
        validate(payload, kind="repro/fault")
    return PathDelayFault(
        tuple(payload["signals"]), Transition(payload["transition"])
    )


def pattern_to_payload(pattern: TestPattern, envelope: bool = True) -> Dict:
    body = {
        "v1": list(pattern.v1),
        "v2": list(pattern.v2),
        "fault": (
            fault_to_payload(pattern.fault, envelope=False)
            if pattern.fault is not None
            else None
        ),
    }
    return stamp("repro/pattern", body) if envelope else body


def pattern_from_payload(payload: Dict, envelope: bool = True) -> TestPattern:
    if envelope:
        validate(payload, kind="repro/pattern")
    fault = payload.get("fault")
    return TestPattern(
        tuple(payload["v1"]),
        tuple(payload["v2"]),
        fault_from_payload(fault, envelope=False) if fault is not None else None,
    )


# ---------------------------------------------------------------------------
# circuits
# ---------------------------------------------------------------------------


def circuit_to_payload(circuit: Circuit, envelope: bool = True) -> Dict:
    body = {
        "name": circuit.name,
        "inputs": [circuit.signal_name(i) for i in circuit.inputs],
        "gates": [
            {
                "name": g.name,
                "type": g.gate_type.value,
                "fanin": [circuit.signal_name(f) for f in g.fanin],
            }
            for g in circuit.gates
            if not g.is_input
        ],
        "outputs": [circuit.signal_name(o) for o in circuit.outputs],
    }
    return stamp("repro/circuit", body) if envelope else body


def circuit_from_payload(payload: Dict, envelope: bool = True) -> Circuit:
    """Rebuild (and freeze) a circuit; derived views recompute equal.

    Note: gate insertion order is inputs-then-gates, which matches how
    every builder in the project constructs circuits.  A circuit whose
    original insertion order interleaved inputs between gates would
    round-trip structurally equal but with renumbered signal ids.
    """
    if envelope:
        validate(payload, kind="repro/circuit")
    circuit = Circuit(name=payload["name"])
    for name in payload["inputs"]:
        circuit.add_input(name)
    for gate in payload["gates"]:
        circuit.add_gate(gate["name"], gate["type"], gate["fanin"])
    for name in payload["outputs"]:
        circuit.mark_output(name)
    return circuit.freeze()


# ---------------------------------------------------------------------------
# options
# ---------------------------------------------------------------------------


def options_to_payload(options: Options, envelope: bool = True) -> Dict:
    body = Options.adopt(options).layers()
    return stamp("repro/options", body) if envelope else body


def options_from_payload(payload: Dict, envelope: bool = True) -> Options:
    if envelope:
        validate(payload, kind="repro/options")
    layers = {
        layer: dict(payload[layer])
        for layer in ("generation", "schedule", "execution", "persistence", "bist")
        if layer in payload
    }
    return Options.from_layers(layers)


# ---------------------------------------------------------------------------
# reports
# ---------------------------------------------------------------------------


def _record_to_payload(record: FaultRecord) -> Dict:
    return {
        "status": record.status.value,
        "mode": record.mode,
        "fault": (
            fault_to_payload(record.fault, envelope=False)
            if record.fault is not None
            else None
        ),
        "pattern": (
            pattern_to_payload(record.pattern, envelope=False)
            if record.pattern is not None
            else None
        ),
    }


def _record_from_payload(payload: Dict) -> FaultRecord:
    fault = payload.get("fault")
    pattern = payload.get("pattern")
    return FaultRecord(
        fault=fault_from_payload(fault, envelope=False) if fault else None,
        status=FaultStatus(payload["status"]),
        pattern=(
            pattern_from_payload(pattern, envelope=False) if pattern else None
        ),
        mode=payload["mode"],
    )


def tpg_report_to_payload(report: TpgReport, envelope: bool = True) -> Dict:
    body = {
        "circuit": report.circuit_name,
        "test_class": report.test_class.value,
        "width": report.width,
        "records": [_record_to_payload(r) for r in report.records],
        "seconds_sensitize": report.seconds_sensitize,
        "seconds_generate": report.seconds_generate,
        "seconds_simulate": report.seconds_simulate,
        "decisions": report.decisions,
        "backtracks": report.backtracks,
        "implication_passes": report.implication_passes,
    }
    return stamp("repro/tpg-report", body) if envelope else body


def tpg_report_from_payload(payload: Dict, envelope: bool = True) -> TpgReport:
    if envelope:
        validate(payload, kind="repro/tpg-report")
    return TpgReport(
        circuit_name=payload["circuit"],
        test_class=TestClass(payload["test_class"]),
        width=payload["width"],
        records=[_record_from_payload(r) for r in payload["records"]],
        seconds_sensitize=payload["seconds_sensitize"],
        seconds_generate=payload["seconds_generate"],
        seconds_simulate=payload["seconds_simulate"],
        decisions=payload["decisions"],
        backtracks=payload["backtracks"],
        implication_passes=payload["implication_passes"],
    )


def campaign_report_to_payload(report, envelope: bool = True) -> Dict:
    """Serialize a :class:`repro.campaign.CampaignReport`.

    Index-keyed mappings travel as ``[index, value]`` pairs (JSON
    object keys are strings; pairs keep the integers honest).
    """
    body = {
        "circuit": report.circuit_name,
        "test_class": report.test_class.value,
        "options": options_to_payload(report.options, envelope=False),
        "statuses": [
            [index, status.value] for index, status in sorted(report.statuses.items())
        ],
        "modes": [
            [index, mode] for index, mode in sorted(report.modes.items())
        ],
        "records": (
            [
                [index, _record_to_payload(record)]
                for index, record in sorted(report.records.items())
            ]
            if report.records is not None
            else None
        ),
        "patterns": [pattern_to_payload(p, envelope=False) for p in report.patterns],
        "stats": report.stats.as_dict(),
        "complete": report.complete,
    }
    if report.errors:
        body["errors"] = [
            [index, dict(report.errors[index])]
            for index in sorted(report.errors)
        ]
    return stamp("repro/campaign-report", body) if envelope else body


def campaign_report_from_payload(payload: Dict, envelope: bool = True):
    # Imported lazily: repro.campaign imports this module's package at
    # load time (CampaignOptions subclasses the unified Options).
    from ..campaign.report import CampaignReport, CampaignStats

    if envelope:
        validate(payload, kind="repro/campaign-report")
    records = payload.get("records")
    return CampaignReport(
        circuit_name=payload["circuit"],
        test_class=TestClass(payload["test_class"]),
        options=options_from_payload(payload["options"], envelope=False),
        statuses={
            int(index): FaultStatus(value) for index, value in payload["statuses"]
        },
        modes={int(index): mode for index, mode in payload["modes"]},
        records=(
            {int(index): _record_from_payload(r) for index, r in records}
            if records is not None
            else None
        ),
        patterns=[
            pattern_from_payload(p, envelope=False) for p in payload["patterns"]
        ],
        stats=CampaignStats.from_dict(payload["stats"]),
        complete=payload["complete"],
        errors={
            int(index): dict(envelope_)
            for index, envelope_ in payload.get("errors", [])
        },
    )


def bist_report_to_payload(report, envelope: bool = True) -> Dict:
    """Serialize a :class:`repro.bist.BistReport`.

    Register quantities (polynomials, seed, signature) travel as hex
    strings: 64-bit values exceed what some JSON consumers keep exact.
    """
    body = {
        "circuit": report.circuit_name,
        "fault_model": report.fault_model,
        "test_class": (
            report.test_class.value if report.test_class is not None else None
        ),
        "lfsr": {
            "width": report.lfsr_width,
            "kind": report.lfsr_kind,
            "polynomial": hex(report.lfsr_polynomial),
            "seed": hex(report.lfsr_seed),
            "phase_spread": report.phase_spread,
        },
        "misr": {
            "width": report.misr_width,
            "polynomial": hex(report.misr_polynomial),
            "signature": hex(report.signature),
            "aliasing_probability": report.aliasing_probability,
        },
        "faults": report.faults,
        "detected": report.detected,
        "coverage": report.coverage,
        "patterns_applied": report.patterns_applied,
        "windows": report.windows,
        "stop_reason": report.stop_reason,
        "max_patterns": report.max_patterns,
        "target_coverage": report.target_coverage,
        "curve": [[patterns, detected] for patterns, detected in report.curve],
    }
    return stamp("repro/bist-report", body) if envelope else body


def bist_report_from_payload(payload: Dict, envelope: bool = True):
    from ..bist.report import BistReport  # lazy: keep bist optional at import

    if envelope:
        validate(payload, kind="repro/bist-report")
    lfsr = payload["lfsr"]
    misr = payload["misr"]
    test_class = payload["test_class"]
    return BistReport(
        circuit_name=payload["circuit"],
        fault_model=payload["fault_model"],
        test_class=TestClass(test_class) if test_class is not None else None,
        lfsr_width=lfsr["width"],
        lfsr_kind=lfsr["kind"],
        lfsr_polynomial=int(lfsr["polynomial"], 16),
        lfsr_seed=int(lfsr["seed"], 16),
        phase_spread=lfsr["phase_spread"],
        misr_width=misr["width"],
        misr_polynomial=int(misr["polynomial"], 16),
        signature=int(misr["signature"], 16),
        aliasing_probability=misr["aliasing_probability"],
        faults=payload["faults"],
        detected=payload["detected"],
        patterns_applied=payload["patterns_applied"],
        windows=payload["windows"],
        stop_reason=payload["stop_reason"],
        max_patterns=payload["max_patterns"],
        target_coverage=payload["target_coverage"],
        curve=[(patterns, detected) for patterns, detected in payload["curve"]],
    )


# ---------------------------------------------------------------------------
# generic dispatch
# ---------------------------------------------------------------------------


def dump(obj) -> Dict:
    """Serialize any supported artifact to its enveloped payload."""
    from ..bist.report import BistReport  # lazy: import cycle
    from ..campaign.report import CampaignReport  # lazy: import cycle

    if isinstance(obj, BistReport):
        return bist_report_to_payload(obj)
    if isinstance(obj, PathDelayFault):
        return fault_to_payload(obj)
    if isinstance(obj, TestPattern):
        return pattern_to_payload(obj)
    if isinstance(obj, Circuit):
        return circuit_to_payload(obj)
    if isinstance(obj, Options):
        return options_to_payload(obj)
    if isinstance(obj, TpgReport):
        return tpg_report_to_payload(obj)
    if isinstance(obj, CampaignReport):
        return campaign_report_to_payload(obj)
    raise TypeError(f"no serializer for {type(obj).__name__}")


_LOADERS = {
    "repro/fault": fault_from_payload,
    "repro/pattern": pattern_from_payload,
    "repro/circuit": circuit_from_payload,
    "repro/options": options_from_payload,
    "repro/tpg-report": tpg_report_from_payload,
    "repro/campaign-report": campaign_report_from_payload,
    "repro/bist-report": bist_report_from_payload,
}


def load(payload: Dict):
    """Deserialize any enveloped payload back into its object."""
    kind, _version = validate(payload)
    loader = _LOADERS.get(kind)
    if loader is None:
        raise SchemaError(f"schema kind {kind!r} has no object codec")
    return loader(payload, envelope=False)
