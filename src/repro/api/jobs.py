"""The async job queue: submit → poll → result, durable across restarts.

Long-running work (campaigns) must not hold an HTTP connection open or
block the service's request threads.  :class:`JobManager` runs a
bounded pool of worker threads over a FIFO job queue:

* **submit** validates the wire payload, assigns an id, persists the
  job record (when a jobs directory is configured) and enqueues it —
  returning immediately.  A full queue raises :class:`QuotaExceeded`
  (the HTTP layer maps it to ``429`` with ``Retry-After``).
* **poll** (``get``/``list``) reads the job record: state, per-round
  progress (fed by the campaign's :class:`repro.campaign.
  CampaignControl` hook), and the result payload once done.
* **cancel** flips the job's cancel event; a queued job is skipped, a
  running campaign stops at the next round boundary and flushes its
  checkpoint.
* **shutdown** (SIGTERM/SIGINT via ``tip serve``) stops the workers
  gracefully: running campaigns checkpoint and park as
  ``interrupted``, queued jobs stay ``queued`` on disk.  A new manager
  over the same jobs directory re-enqueues both — campaign jobs resume
  from their checkpoint JSON, so no completed round is re-run.

Job records and campaign checkpoints live side by side in the jobs
directory (``<id>.job.json`` / ``<id>.ckpt.json``), each carrying the
versioned schema envelope (``repro/job`` /
``repro/campaign-checkpoint``).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .. import chaos
from ..campaign.runner import CampaignControl
from . import integrity
from .schemas import stamp, validate

#: States a job can be observed in.  ``interrupted`` means "parked by
#: a graceful shutdown, resumable"; the other terminal states are not
#: re-enqueued on recovery.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "interrupted")
_ACTIVE_STATES = ("queued", "running")
_RESUMABLE_STATES = ("queued", "running", "interrupted")


class QuotaExceeded(Exception):
    """Backpressure signal: the caller should retry after a delay.

    Raised when the job queue is full or a tenant exceeds its quota;
    the HTTP layer maps it to ``429`` with a ``Retry-After`` header.
    """

    def __init__(self, detail: str, retry_after: float = 1.0):
        super().__init__(detail)
        self.retry_after = retry_after


@dataclass
class Job:
    """One submitted unit of work and its observable lifecycle."""

    id: str
    verb: str
    payload: Dict
    tenant: str = "anonymous"
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    progress: Dict[str, int] = field(default_factory=dict)
    result: Optional[Dict] = None
    error: Optional[Dict] = None
    checkpoint: Optional[str] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: Name of the worker thread currently running this job; lets the
    #: supervisor requeue jobs orphaned by a dead thread.  Process
    #: state only — never serialized.
    owner: Optional[str] = None

    def body(self) -> Dict:
        """The bare ``repro/job`` body (un-enveloped; job-list rows)."""
        body: Dict = {
            "id": self.id,
            "verb": self.verb,
            "state": self.state,
            "tenant": self.tenant,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.progress:
            body["progress"] = dict(self.progress)
        if self.result is not None:
            body["result"] = self.result
        if self.error is not None:
            body["error"] = self.error
        if self.checkpoint is not None:
            body["checkpoint"] = self.checkpoint
        return body

    def snapshot(self) -> Dict:
        """The enveloped ``repro/job`` wire payload."""
        return stamp("repro/job", self.body())


class _JobControl(CampaignControl):
    """Campaign hook bound to one job: cancel + shutdown + progress."""

    def __init__(self, job: Job, manager: "JobManager"):
        self.job = job
        self.manager = manager

    def should_stop(self) -> bool:
        return (
            self.job.cancel_event.is_set()
            or self.manager._stopping.is_set()
        )

    def on_round(self, progress: Dict[str, int]) -> None:
        self.job.progress = progress
        self.manager._persist(self.job)


#: ``run(job, control) -> result payload`` — supplied by the service;
#: the manager owns scheduling, the service owns execution semantics.
RunFn = Callable[[Job, CampaignControl], Dict]


class JobManager:
    """Bounded worker pool + FIFO queue with optional disk durability.

    Args:
        run: executes one job (the service's dispatcher closure).
        workers: worker threads draining the queue.
        max_queue: queued-job bound; submissions beyond it raise
            :class:`QuotaExceeded` (HTTP 429 + Retry-After).
        jobs_dir: directory for job records and campaign checkpoints;
            ``None`` keeps everything in memory (no restart recovery).
        max_jobs_per_tenant: active (queued+running) jobs one tenant
            may hold; ``0`` = unlimited.
    """

    def __init__(
        self,
        run: RunFn,
        *,
        workers: int = 2,
        max_queue: int = 32,
        jobs_dir: Optional[str] = None,
        max_jobs_per_tenant: int = 0,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._run = run
        self.max_queue = max_queue
        self.jobs_dir = jobs_dir
        self.max_jobs_per_tenant = max_jobs_per_tenant
        self._jobs: Dict[str, Job] = {}
        self._queue: List[str] = []
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._stopping = threading.Event()
        #: Worker threads resurrected after dying mid-job (the
        #: ``/v1/metrics`` ``worker_restarts`` contribution).
        self.worker_restarts = 0
        self._worker_seq = 0
        if jobs_dir is not None:
            os.makedirs(jobs_dir, exist_ok=True)
            self._recover()
        self._threads = [self._spawn_worker() for _ in range(workers)]

    # ------------------------------------------------------------ supervise
    def _spawn_worker(self) -> threading.Thread:
        self._worker_seq += 1
        thread = threading.Thread(
            target=self._worker,
            name=f"tip-job-worker-{self._worker_seq}",
            daemon=True,
        )
        thread.start()
        return thread

    def _ensure_workers(self) -> None:
        """Resurrect dead worker threads and requeue their orphans.

        A worker thread that dies mid-job (a bug below the job
        boundary, an injected ``job_worker_death``) would otherwise
        strand its job in ``running`` forever and shrink the pool.
        Every public entry point calls this first: dead threads are
        detected by liveness, their running jobs are put back at the
        *front* of the queue (they were dequeued first), and
        replacement threads are started.  Idempotent and cheap when
        everything is alive.
        """
        with self._lock:
            if self._stopping.is_set():
                return
            dead = [t for t in self._threads if not t.is_alive()]
            if not dead:
                return
            dead_names = {t.name for t in dead}
            orphans = [
                job
                for job in self._jobs.values()
                if job.state == "running" and job.owner in dead_names
            ]
            for job in sorted(orphans, key=lambda j: j.submitted_at, reverse=True):
                job.state = "queued"
                job.owner = None
                job.started_at = None
                self._queue.insert(0, job.id)
                self._persist(job)
            self._threads = [t for t in self._threads if t.is_alive()]
            for _ in dead:
                self.worker_restarts += 1
                self._threads.append(self._spawn_worker())
            self._wake.notify_all()

    # ------------------------------------------------------------ persist
    def _job_path(self, job_id: str) -> Optional[str]:
        if self.jobs_dir is None:
            return None
        return os.path.join(self.jobs_dir, f"{job_id}.job.json")

    def _persist(self, job: Job) -> None:
        path = self._job_path(job.id)
        if path is None:
            return
        # checksummed + generation-rotated: a torn write of the job
        # record is detected on recovery and falls back to .prev
        integrity.write_json_rotated(path, job.snapshot(), indent=2)

    def _recover(self) -> None:
        """Re-enqueue every resumable job found in the jobs directory.

        Campaign jobs re-run with ``resume=True`` over their existing
        checkpoint, so an interrupted service restart continues rather
        than restarts the work.
        """
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".job.json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                payload, _ = integrity.load_json_verified(path)
                validate(payload, kind="repro/job")
            except (OSError, ValueError):
                continue  # no readable generation: leave for inspection
            job = Job(
                id=payload["id"],
                verb=payload["verb"],
                payload={},  # filled below for resumable jobs
                tenant=payload["tenant"],
                state=payload["state"],
                submitted_at=payload["submitted_at"],
                started_at=payload.get("started_at"),
                finished_at=payload.get("finished_at"),
                progress=payload.get("progress", {}),
                result=payload.get("result"),
                error=payload.get("error"),
                checkpoint=payload.get("checkpoint"),
            )
            if job.state in _RESUMABLE_STATES:
                request_path = os.path.join(
                    self.jobs_dir, f"{job.id}.request.json"
                )
                try:
                    with open(request_path) as handle:
                        job.payload = json.load(handle)
                except (OSError, ValueError):
                    job.state = "failed"
                    job.error = {
                        "error": "RecoveryError",
                        "detail": "job request payload missing or unreadable",
                    }
                    self._jobs[job.id] = job
                    self._persist(job)
                    continue
                job.state = "queued"
                self._jobs[job.id] = job
                self._queue.append(job.id)
                self._persist(job)
            else:
                self._jobs[job.id] = job

    # ------------------------------------------------------------ submit
    def submit(self, verb: str, payload: Dict, tenant: str = "anonymous") -> Job:
        """Enqueue one job; returns immediately with the job record."""
        self._ensure_workers()
        with self._lock:
            if self._stopping.is_set():
                raise QuotaExceeded("service is shutting down", retry_after=5.0)
            if len(self._queue) >= self.max_queue:
                raise QuotaExceeded(
                    f"job queue is full ({self.max_queue} queued)",
                    retry_after=2.0,
                )
            if self.max_jobs_per_tenant:
                active = sum(
                    1
                    for job in self._jobs.values()
                    if job.tenant == tenant and job.state in _ACTIVE_STATES
                )
                if active >= self.max_jobs_per_tenant:
                    raise QuotaExceeded(
                        f"tenant {tenant!r} already has {active} active "
                        f"job(s) (quota: {self.max_jobs_per_tenant})",
                        retry_after=2.0,
                    )
            job = Job(
                id=uuid.uuid4().hex[:16],
                verb=verb,
                payload=payload,
                tenant=tenant,
                submitted_at=time.time(),
            )
            if self.jobs_dir is not None:
                job.checkpoint = os.path.join(
                    self.jobs_dir, f"{job.id}.ckpt.json"
                )
                request_path = os.path.join(
                    self.jobs_dir, f"{job.id}.request.json"
                )
                tmp = f"{request_path}.tmp"
                with open(tmp, "w") as handle:
                    json.dump(payload, handle)
                os.replace(tmp, request_path)
            self._jobs[job.id] = job
            self._queue.append(job.id)
            self._persist(job)
            self._wake.notify()
        return job

    # ------------------------------------------------------------ observe
    def get(self, job_id: str) -> Optional[Job]:
        self._ensure_workers()
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[Job]:
        self._ensure_workers()
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def counts(self) -> Dict[str, int]:
        self._ensure_workers()
        counts = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts

    def verb_counts(self) -> Dict[str, int]:
        """Jobs per verb (all states) — the ``jobs_by_verb`` metric."""
        counts: Dict[str, int] = {}
        with self._lock:
            for job in self._jobs.values():
                counts[job.verb] = counts.get(job.verb, 0) + 1
        return counts

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # ------------------------------------------------------------ cancel
    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; returns the (possibly updated) job.

        A queued job is cancelled immediately; a running job stops at
        its next round boundary (the campaign flushes a checkpoint
        first, so a cancelled job is still resumable by a fresh
        submission over the same checkpoint).  Terminal jobs are
        returned unchanged.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.cancel_event.set()
            if job.state == "queued":
                # tolerate the id being absent: a worker may have
                # dequeued it in the instant before we took the lock
                # (the worker's own pre-run cancel check settles it)
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    return job
                job.state = "cancelled"
                job.finished_at = time.time()
                self._persist(job)
        return job

    # ------------------------------------------------------------ workers
    def _next_job(self) -> Optional[Job]:
        with self._lock:
            while not self._queue and not self._stopping.is_set():
                self._wake.wait(timeout=0.2)
            if self._stopping.is_set() or not self._queue:
                return None
            job = self._jobs[self._queue.pop(0)]
            job.state = "running"
            job.owner = threading.current_thread().name
            job.started_at = time.time()
            self._persist(job)
            return job

    def _worker(self) -> None:
        while not self._stopping.is_set():
            job = self._next_job()
            if job is None:
                continue
            if chaos.should_fire("job_worker_death"):
                # the injected failure: this thread dies with its job
                # still marked running — _ensure_workers must requeue
                # the job and replace the thread
                return
            if job.cancel_event.is_set():
                # cancelled in the instant between dequeue and run
                job.state = "cancelled"
                job.owner = None
                job.finished_at = time.time()
                self._persist(job)
                continue
            control = _JobControl(job, self)
            try:
                result = self._run(job, control)
            except Exception as exc:  # noqa: BLE001 - job boundary
                job.state = "failed"
                job.error = {
                    "error": "JobError",
                    "detail": f"{type(exc).__name__}: {exc}",
                }
            else:
                if job.cancel_event.is_set():
                    job.state = "cancelled"
                elif self._stopping.is_set() and result is None:
                    job.state = "interrupted"
                else:
                    job.state = "done"
                    job.result = result
            job.owner = None
            job.finished_at = time.time()
            self._persist(job)

    # ------------------------------------------------------------ shutdown
    def shutdown(self, timeout: float = 30.0) -> None:
        """Graceful stop: drain running jobs to a resumable state.

        New submissions are refused, running campaigns observe
        ``should_stop`` at their next round boundary and flush their
        checkpoints, queued jobs stay ``queued`` (durable when a jobs
        directory is configured).  Blocks until the workers exit or
        *timeout* elapses.
        """
        self._stopping.set()
        with self._lock:
            self._wake.notify_all()
        deadline = time.time() + timeout
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.time()))
