"""Command-line interface: the ``tip`` multi-command front end.

One entry point, ``main`` (the ``tip`` console script), dispatches to
subcommands that are all thin adapters over the same
:mod:`repro.api` objects the service endpoint uses —
:class:`repro.api.AtpgSession`, the unified
:class:`repro.api.Options` model, and the versioned schema registry:

* ``tip atpg`` — generate robust/nonrobust path delay tests for a
  circuit (a ``.bench`` file, an embedded circuit, or a suite name).
* ``tip bist`` — pseudorandom built-in self-test: LFSR pattern
  generation in packed lane-slab form, fault-dropping coverage
  curves, and MISR signature compaction.
* ``tip campaign`` — staged ATPG campaign: stream the fault universe,
  shard generation across worker processes, drop collaterally
  detected faults globally, checkpoint and resume.
* ``tip paths`` — count/enumerate structural paths and faults.
* ``tip experiments`` — regenerate the paper's tables and figures.
* ``tip bench-sim`` — PPSFP throughput (patterns x faults / second)
  of the compiled-kernel backends against the seed object-graph path.
* ``tip serve`` — the long-lived JSON service endpoint
  (:mod:`repro.api.service`).
* ``tip validate`` — validate JSON artifacts against the declared
  schemas (CI runs this over every checked-in artifact).

The historical per-command names survive as aliases: ``main_atpg``
etc. are the same functions the dispatcher calls (``tip-atpg`` ==
``tip atpg``), invoked as ``PYTHONPATH=src python -c "from repro.cli
import main_<name>; main_<name>([...])"`` or through the registered
console scripts.

Circuit and test-class resolution is shared with the API layer
(:mod:`repro.api.resolve`) — no subcommand re-implements it.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional, Tuple

from .analysis import (
    render_table,
    run_ablation_implications,
    run_ablation_modes,
    run_ablation_word_length,
    run_campaign_scaling,
    run_figure1,
    run_figure2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)
from .api import AtpgSession, Options, ResolutionError, SchemaError
from .api import resolve_circuit as _resolve_circuit
from .api.options import DEFAULT_SHARDS
from .api.resolve import resolve_test_class
from .api.schemas import stamp, validate_file
from .circuit import Circuit
from .logic.words import DEFAULT_WORD_LENGTH
from .paths import (
    TestClass,
    fault_list,
)


def resolve_circuit(spec: str, scale: int = 1) -> Circuit:
    """Interpret a circuit spec; exits cleanly on unknown specs.

    Thin CLI wrapper over :func:`repro.api.resolve.resolve_circuit`
    (the shared implementation): resolution errors become
    ``SystemExit`` instead of a traceback.
    """
    try:
        return _resolve_circuit(spec, scale)
    except ResolutionError as exc:
        raise SystemExit(str(exc)) from None


def _add_circuit_arguments(parser: argparse.ArgumentParser) -> None:
    """The spec/scale pair every circuit-consuming subcommand takes."""
    parser.add_argument("circuit", help=".bench file, embedded or suite circuit name")
    parser.add_argument("--scale", type=int, default=1, help="suite circuit scale")


def _add_test_class_argument(
    parser: argparse.ArgumentParser, default: str = "nonrobust"
) -> None:
    parser.add_argument(
        "--class",
        dest="test_class",
        choices=["robust", "nonrobust"],
        default=default,
        help=f"test class (default: {default})",
    )


# ---------------------------------------------------------------------------
# tip atpg
# ---------------------------------------------------------------------------


def main_atpg(argv: Optional[List[str]] = None) -> int:
    """Generate path delay tests for one circuit."""
    parser = argparse.ArgumentParser(
        prog="tip-atpg",
        description="Bit-parallel path delay fault test generation (TIP).",
    )
    _add_circuit_arguments(parser)
    _add_test_class_argument(parser)
    parser.add_argument(
        "--width", type=int, default=DEFAULT_WORD_LENGTH, help="word length L"
    )
    parser.add_argument(
        "--max-faults", type=int, default=None, help="cap on the fault list"
    )
    parser.add_argument(
        "--strategy",
        choices=["all", "longest", "sample"],
        default="all",
        help="fault selection strategy",
    )
    parser.add_argument(
        "--single-bit",
        action="store_true",
        help="restrict the generator to one bit level (the baseline)",
    )
    parser.add_argument(
        "--no-drop", action="store_true", help="disable fault dropping"
    )
    parser.add_argument(
        "--patterns", action="store_true", help="print the generated patterns"
    )
    args = parser.parse_args(argv)

    session = AtpgSession(
        resolve_circuit(args.circuit, args.scale),
        options=Options(
            width=1 if args.single_bit else args.width,
            drop_faults=not args.no_drop,
        ),
    )
    report = session.generate(
        test_class=resolve_test_class(args.test_class),
        max_faults=args.max_faults,
        strategy=args.strategy,
    )
    print(
        render_table(
            [report.summary()], title=f"{session.circuit.name}: ATPG summary"
        )
    )
    if args.patterns:
        print()
        for record in report.records:
            if record.pattern is not None:
                print(record.pattern.describe(session.circuit))
    return 0


# ---------------------------------------------------------------------------
# tip campaign
# ---------------------------------------------------------------------------


def main_campaign(argv: Optional[List[str]] = None) -> int:
    """Staged ATPG campaign: stream, shard, drop, checkpoint."""
    parser = argparse.ArgumentParser(
        prog="tip-campaign",
        description=(
            "Staged ATPG campaign: stream the structural fault universe "
            "lazily, shard lane-width generation batches across worker "
            "processes, and drop collaterally detected faults on a global "
            "simulation bus after every round."
        ),
        epilog=(
            "Checkpoint/resume: with --checkpoint PATH, progress (settled "
            "statuses, retained patterns, pending window, stream position) "
            "is written atomically every --checkpoint-every rounds and once "
            "at completion.  Re-running the same command with --resume "
            "restarts exactly where the interrupted campaign stopped — the "
            "fault stream is deterministic and re-enters by position, so no "
            "generation or simulation work is repeated."
        ),
    )
    _add_circuit_arguments(parser)
    _add_test_class_argument(parser)
    parser.add_argument(
        "--width", type=int, default=DEFAULT_WORD_LENGTH, help="word length L"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = in-process; statuses are identical "
        "for every worker count)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="generation batches per drop round (default: 2, independent of "
        "--workers so worker count never changes results; raise it "
        "explicitly to give every worker a batch per round — that widens "
        "the schedule deterministically and changes per-fault statuses "
        "the same way for every worker count)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=4096,
        help="peak pending faults held in memory (0 = unbounded)",
    )
    parser.add_argument(
        "--max-paths",
        type=int,
        default=None,
        help="budget cap on streamed structural paths (two faults each)",
    )
    parser.add_argument(
        "--max-faults", type=int, default=None, help="budget cap on streamed faults"
    )
    parser.add_argument(
        "--min-length", type=int, default=None, help="keep paths of >= this length"
    )
    parser.add_argument(
        "--max-length", type=int, default=None, help="keep paths of <= this length"
    )
    parser.add_argument(
        "--checkpoint", default=None, help="JSON checkpoint file for resume"
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=16,
        help="rounds between checkpoint writes (default: 16)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from --checkpoint if it exists",
    )
    parser.add_argument(
        "--compact-every",
        type=int,
        default=None,
        help="incremental reverse-order compaction of the retained pattern "
        "set every N fresh patterns (default: off)",
    )
    parser.add_argument(
        "--no-drop", action="store_true", help="disable fault dropping"
    )
    parser.add_argument(
        "--no-records",
        action="store_true",
        help="keep statuses only (lower memory for huge campaigns)",
    )
    parser.add_argument(
        "--json", dest="json_path", default=None, help="write the summary as JSON"
    )
    parser.add_argument(
        "--shard-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard wall-clock deadline; a shard past the deadline is "
        "treated as a dead/hung worker and resubmitted (default: off)",
    )
    parser.add_argument(
        "--shard-attempts",
        type=int,
        default=3,
        help="attempts per shard before quarantine (default: 3)",
    )
    parser.add_argument(
        "--retry-base-ms",
        type=float,
        default=50.0,
        help="base backoff between shard retries in ms (default: 50)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="deterministic fault-injection JSON spec, e.g. "
        '\'{"points": [{"site": "shard_crash", "at": [1]}]}\' (testing only)',
    )
    args = parser.parse_args(argv)

    from .campaign.universe import FaultUniverse

    session = AtpgSession(resolve_circuit(args.circuit, args.scale))
    max_faults = args.max_faults
    if args.max_paths is not None:
        cap = 2 * args.max_paths
        max_faults = cap if max_faults is None else min(max_faults, cap)
    universe = FaultUniverse.from_circuit(
        session.circuit,
        max_faults=max_faults,
        min_length=args.min_length,
        max_length=args.max_length,
    )
    report = session.campaign(
        universe=universe,
        test_class=resolve_test_class(args.test_class),
        options=Options(
            width=args.width,
            shards=args.shards if args.shards is not None else DEFAULT_SHARDS,
            workers=args.workers,
            window=args.window if args.window > 0 else None,
            drop_faults=not args.no_drop,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            compact_every=args.compact_every,
            keep_records=not args.no_records,
            shard_deadline_s=args.shard_deadline,
            shard_attempts=args.shard_attempts,
            retry_base_ms=args.retry_base_ms,
            chaos=args.chaos,
        ),
    )
    print(
        render_table(
            [report.summary()], title=f"{session.circuit.name}: campaign summary"
        )
    )
    stats = report.stats
    print(
        f"rounds: {stats.rounds} (fptpg {stats.fptpg_rounds}, "
        f"aptpg {stats.aptpg_rounds}), peak pending: {stats.peak_pending}, "
        f"admission-dropped: {stats.admitted_dropped}, "
        f"compactions: {stats.compactions}"
    )
    if stats.worker_restarts or stats.shard_retries or stats.quarantined_shards:
        print(
            f"supervision: worker restarts {stats.worker_restarts}, "
            f"shard retries {stats.shard_retries}, "
            f"quarantined shards {stats.quarantined_shards}"
        )
    if args.checkpoint:
        print(f"checkpoint: {args.checkpoint}")
    if args.json_path:
        payload = {
            "summary": report.summary(),
            "stats": stats.as_dict(),
            "universe": universe.describe(),
        }
        with open(args.json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_path}")
    return 0


# ---------------------------------------------------------------------------
# tip paths
# ---------------------------------------------------------------------------


def main_paths(argv: Optional[List[str]] = None) -> int:
    """Count and enumerate structural paths and faults."""
    parser = argparse.ArgumentParser(
        prog="tip-paths",
        description="Structural path counting and enumeration.",
    )
    _add_circuit_arguments(parser)
    parser.add_argument(
        "--list", type=int, default=0, metavar="N", help="print the first N paths"
    )
    parser.add_argument(
        "--histogram", action="store_true", help="print the path-length histogram"
    )
    args = parser.parse_args(argv)

    session = AtpgSession(resolve_circuit(args.circuit, args.scale))
    result = session.paths(histogram=args.histogram, limit=args.list)
    stats = result["stats"]
    print(f"circuit   : {result['circuit']}")
    print(f"inputs    : {stats['inputs']}")
    print(f"gates     : {stats['gates']}")
    print(f"outputs   : {stats['outputs']}")
    print(f"depth     : {stats['depth']}")
    print(f"paths     : {result['paths']}")
    print(f"faults    : {result['faults']}")
    if args.histogram:
        rows = [
            {"length": length, "paths": count}
            for length, count in result["histogram"]
        ]
        print()
        print(render_table(rows, title="path length histogram"))
    if args.list:
        print()
        for line in result["listed"]:
            print(line)
    return 0


# ---------------------------------------------------------------------------
# tip bist
# ---------------------------------------------------------------------------


def main_bist(argv: Optional[List[str]] = None) -> int:
    """Pseudorandom BIST: LFSR patterns, coverage curve, MISR signature."""
    from .api import serde
    from .bist.lfsr import LFSR_KINDS

    parser = argparse.ArgumentParser(
        prog="tip-bist",
        description=(
            "Logic built-in self-test: a primitive-polynomial LFSR emits "
            "pseudorandom patterns directly in packed lane-slab form, the "
            "fault simulator grades them window by window with fault "
            "dropping, and a MISR compacts the fault-free output "
            "responses into the golden signature."
        ),
    )
    _add_circuit_arguments(parser)
    _add_test_class_argument(parser)
    parser.add_argument(
        "--fault-model",
        choices=["stuck-at", "path-delay"],
        default="stuck-at",
        help="fault model to grade (default: stuck-at; --class only "
        "applies to path-delay)",
    )
    parser.add_argument(
        "--lfsr-width", type=int, default=32, help="LFSR register width"
    )
    parser.add_argument(
        "--lfsr-kind",
        choices=list(LFSR_KINDS),
        default="fibonacci",
        help="LFSR feedback structure (default: fibonacci)",
    )
    parser.add_argument(
        "--seed",
        type=lambda value: int(value, 0),
        default=1,
        help="nonzero LFSR seed state (accepts hex, default: 1)",
    )
    parser.add_argument(
        "--phase-spread",
        type=int,
        default=1,
        help="phase-shifter stream offset between adjacent inputs",
    )
    parser.add_argument(
        "--misr-width", type=int, default=32, help="MISR register width"
    )
    parser.add_argument(
        "--window",
        type=int,
        default=256,
        help="patterns simulated per fault-dropping round",
    )
    parser.add_argument(
        "--max-patterns", type=int, default=4096, help="pattern budget"
    )
    parser.add_argument(
        "--target-coverage",
        type=float,
        default=None,
        metavar="FRACTION",
        help="stop once detected/faults reaches this fraction",
    )
    parser.add_argument(
        "--max-faults", type=int, default=None, help="cap on the fault list"
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "numpy", "native"],
        default="auto",
        help="simulation word backend (default: auto)",
    )
    parser.add_argument(
        "--fusion",
        choices=["auto", "interp", "vector", "codegen"],
        default="auto",
        help="plan-execution strategy (default: auto)",
    )
    parser.add_argument(
        "--curve",
        type=int,
        default=0,
        metavar="N",
        help="print the last N coverage-curve points",
    )
    parser.add_argument(
        "--json", dest="json_path", default=None, help="write the report as JSON"
    )
    args = parser.parse_args(argv)

    session = AtpgSession(
        resolve_circuit(args.circuit, args.scale),
        options=Options(
            sim_backend=args.backend,
            fusion=args.fusion,
            bist_width=args.lfsr_width,
            bist_kind=args.lfsr_kind,
            bist_seed=args.seed,
            bist_phase_spread=args.phase_spread,
            misr_width=args.misr_width,
            bist_window=args.window,
            bist_max_patterns=args.max_patterns,
            bist_target_coverage=args.target_coverage,
        ),
    )
    report = session.bist(
        fault_model=args.fault_model,
        test_class=resolve_test_class(args.test_class),
        max_faults=args.max_faults,
    )
    print(report.summary())
    if args.curve:
        print()
        print("coverage curve (patterns applied, faults detected):")
        for applied, detected in report.curve[-args.curve :]:
            print(f"  {applied:8d}  {detected:8d}")
    if args.json_path:
        payload = serde.bist_report_to_payload(report)
        with open(args.json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_path}")
    return 0


# ---------------------------------------------------------------------------
# tip bench-sim
# ---------------------------------------------------------------------------


def bench_ppsfp(
    circuit: Circuit,
    test_class: TestClass,
    n_patterns: int = 1024,
    fault_cap: int = 128,
    repeat: int = 3,
    seed: int = 0,
    strategies: tuple = ("vector", "codegen"),
    seed_baseline: bool = True,
    native: bool = False,
) -> Dict[str, object]:
    """Time PPSFP per execution strategy on one identical workload.

    Every run checks every fault against every pattern.  Four tiers
    are compared:

    * **seed** (optional) — the pre-kernel object-graph path
      (preserved verbatim in :mod:`repro.sim.reference`), simulating
      in one-machine-word chunks of 64 lanes as the seed engine did,
    * **interp** — the compiled numpy kernel with the per-gate
      interpreter loop (the v1 ``kernel_*`` numbers),
    * **fused** — the requested *strategies* (``"vector"`` and/or
      ``"codegen"``) on the same kernel,
    * **native** (optional) — the compiled-C word backend
      (:mod:`repro.kernel.native`): planes pass, fault injection and
      detection walk all inside one cffi module, one Python call per
      batch.  Skipped silently when no C toolchain is available.

    Detection masks are asserted equal lane-for-lane across every
    tier, so speed-ups are never bought with a semantics change.
    Fused runs are warmed once before timing — plan fusion and
    codegen are one-time lowering costs cached on the compiled
    circuit, amortized over a workload's lifetime exactly like the
    lowering itself.  The batch is packed into uint64 lane planes once
    up front and every kernel tier receives the packed batch, so the
    timed region measures simulation, not Python-side marshalling
    (the seed tier keeps the raw pattern list — chunked packing *is*
    part of its engine).  Throughput is patterns x faults per second,
    best of *repeat* runs.
    """
    from .core.patterns import random_patterns
    from .kernel.packed import PackedPatterns
    from .sim import DelayFaultSimulator
    from .sim.reference import detected_faults_reference

    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    faults = fault_list(circuit, cap=fault_cap, strategy="all")
    patterns = random_patterns(circuit, n_patterns, seed)
    packed = PackedPatterns.from_patterns(patterns)
    work = len(patterns) * len(faults)

    def run_seed() -> Dict:
        merged = {fault: 0 for fault in faults}
        for start in range(0, len(patterns), 64):
            chunk = patterns[start : start + 64]
            hits = detected_faults_reference(circuit, chunk, faults, test_class)
            for fault, lanes in hits.items():
                merged[fault] |= lanes << start
        return merged

    row: Dict[str, object] = {
        "circuit": circuit.name,
        "workload": "ppsfp",
        "test_class": test_class.value,
        "signals": circuit.num_signals,
        "faults": len(faults),
        "patterns": n_patterns,
    }

    interp_sim = DelayFaultSimulator(
        circuit, test_class, backend="numpy", fusion="interp"
    )
    interp_seconds, interp_masks = _best_of_runs(
        repeat,
        lambda: interp_sim.detected_faults(packed, faults)
    )
    row["interp_seconds"] = round(interp_seconds, 6)
    row["interp_throughput"] = round(work / interp_seconds, 1)

    if seed_baseline:
        seed_seconds, seed_masks = _best_of_runs(repeat, run_seed)
        if seed_masks != interp_masks:
            raise AssertionError(
                f"kernel and seed PPSFP disagree on {circuit.name}"
            )
        row["seed_seconds"] = round(seed_seconds, 6)
        row["seed_throughput"] = round(work / seed_seconds, 1)
        row["interp_speedup_vs_seed"] = round(seed_seconds / interp_seconds, 2)

    fused_best: Optional[Tuple[float, str]] = None
    for strategy in strategies:
        sim = DelayFaultSimulator(
            circuit, test_class, backend="numpy", fusion=strategy
        )
        sim.detected_faults(patterns[:64], faults[:1])  # warm the lowering
        seconds, masks = _best_of_runs(
            repeat, lambda: sim.detected_faults(packed, faults)
        )
        if masks != interp_masks:
            raise AssertionError(
                f"{strategy} and interp PPSFP disagree on {circuit.name}"
            )
        row[f"{strategy}_seconds"] = round(seconds, 6)
        row[f"{strategy}_throughput"] = round(work / seconds, 1)
        if fused_best is None or seconds < fused_best[0]:
            fused_best = (seconds, strategy)
    if fused_best is not None:
        row["best_fused"] = fused_best[1]
        row["fused_speedup"] = round(interp_seconds / fused_best[0], 2)
    if native and _native_ready():
        sim = DelayFaultSimulator(
            circuit, test_class, backend="native", fusion="auto"
        )
        sim.detected_faults(patterns[:64], faults[:1])  # warm the C build
        seconds, masks = _best_of_runs(
            repeat, lambda: sim.detected_faults(packed, faults)
        )
        if masks != interp_masks:
            raise AssertionError(
                f"native and interp PPSFP disagree on {circuit.name}"
            )
        _native_columns(row, work, interp_seconds, seconds)
    return row


def _native_ready() -> bool:
    """True when the compiled-C backend can actually build modules."""
    from .kernel.native import native_available

    return native_available()


def _native_columns(
    row: Dict[str, object], work: int, interp_seconds: float, seconds: float
) -> None:
    row["native_seconds"] = round(seconds, 6)
    row["native_throughput"] = round(work / seconds, 1)
    row["native_speedup"] = round(interp_seconds / seconds, 2)


def _best_of_runs(repeat: int, fn):
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_grade10(
    circuit: Circuit,
    n_patterns: int = 1024,
    fault_cap: int = 128,
    repeat: int = 3,
    seed: int = 0,
    strategies: tuple = ("vector", "codegen"),
    native: bool = False,
) -> Dict[str, object]:
    """Time 10-valued detection-strength grading per execution strategy.

    The workload is one batched :func:`repro.sim.delay_sim.
    strength_masks_all` call on the numpy backend — every fault graded
    against every pattern in all three classes (nonrobust / robust /
    hazard-free robust) from a single 5-plane forward pass.  The
    interpreted tier dispatches :func:`repro.logic.ten_valued.forward`
    per gate and walks faults one by one; the fused tiers run the
    slab-form group executor or the straight-line compiled body plus
    the edge-sharing batched walk.  Strength-mask triples are asserted
    bit-identical across every tier.  As in :func:`bench_ppsfp`, the
    batch is packed once up front so every tier times simulation, not
    marshalling.
    """
    from .core.patterns import random_patterns
    from .kernel.packed import PackedPatterns
    from .sim.delay_sim import strength_masks_all

    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    faults = fault_list(circuit, cap=fault_cap, strategy="all")
    patterns = random_patterns(circuit, n_patterns, seed)
    packed = PackedPatterns.from_patterns(patterns)
    work = len(patterns) * len(faults)

    row: Dict[str, object] = {
        "circuit": circuit.name,
        "workload": "grade10",
        "signals": circuit.num_signals,
        "faults": len(faults),
        "patterns": n_patterns,
    }
    interp_seconds, interp_masks = _best_of_runs(
        repeat,
        lambda: strength_masks_all(
            circuit, packed, faults, backend="numpy", fusion="interp"
        ),
    )
    row["interp_seconds"] = round(interp_seconds, 6)
    row["interp_throughput"] = round(work / interp_seconds, 1)
    fused_best: Optional[Tuple[float, str]] = None
    for strategy in strategies:
        # warm the one-time lowering (cached on the compiled circuit)
        strength_masks_all(
            circuit, patterns[:64], faults[:1], backend="numpy", fusion=strategy
        )
        seconds, masks = _best_of_runs(
            repeat,
            lambda strategy=strategy: strength_masks_all(
                circuit, packed, faults, backend="numpy", fusion=strategy
            ),
        )
        if masks != interp_masks:
            raise AssertionError(
                f"{strategy} and interp 10-valued grading disagree on "
                f"{circuit.name}"
            )
        row[f"{strategy}_seconds"] = round(seconds, 6)
        row[f"{strategy}_throughput"] = round(work / seconds, 1)
        if fused_best is None or seconds < fused_best[0]:
            fused_best = (seconds, strategy)
    if fused_best is not None:
        row["best_fused"] = fused_best[1]
        row["fused_speedup"] = round(interp_seconds / fused_best[0], 2)
    if native and _native_ready():
        strength_masks_all(  # warm the C build
            circuit, patterns[:64], faults[:1], backend="native", fusion="auto"
        )
        seconds, masks = _best_of_runs(
            repeat,
            lambda: strength_masks_all(
                circuit, packed, faults, backend="native", fusion="auto"
            ),
        )
        if masks != interp_masks:
            raise AssertionError(
                f"native and interp 10-valued grading disagree on "
                f"{circuit.name}"
            )
        _native_columns(row, work, interp_seconds, seconds)
    return row


def bench_stuck_at(
    circuit: Circuit,
    n_vectors: int = 256,
    fault_cap: int = 256,
    repeat: int = 3,
    seed: int = 0,
    native: bool = False,
) -> Dict[str, object]:
    """Time parallel-pattern stuck-at simulation per execution strategy.

    Every fault's fanout cone is resimulated against every vector
    batch: the interpreted tier walks the cone gate by gate
    (``eval_gate_word`` with dirty-set early-outs), the fused tier
    runs the per-cone straight-line compiled bodies.  Detection masks
    are asserted bit-identical.  The fused strategies collapse for
    int words, so one ``codegen`` column represents them.
    """
    import random as _random

    from .core.stuck_at import all_stuck_at_faults
    from .sim.stuck_at_sim import StuckAtSimulator

    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    faults = all_stuck_at_faults(circuit)[:fault_cap]
    rng = _random.Random(seed)
    vectors = [
        [rng.randint(0, 1) for _ in circuit.inputs] for _ in range(n_vectors)
    ]
    work = len(vectors) * len(faults)

    row: Dict[str, object] = {
        "circuit": circuit.name,
        "workload": "stuck_at",
        "signals": circuit.num_signals,
        "faults": len(faults),
        "patterns": n_vectors,
    }
    interp_sim = StuckAtSimulator(circuit, fusion="interp")
    interp_seconds, interp_masks = _best_of_runs(
        repeat, lambda: interp_sim.detected_faults(vectors, faults)
    )
    row["interp_seconds"] = round(interp_seconds, 6)
    row["interp_throughput"] = round(work / interp_seconds, 1)
    fused_sim = StuckAtSimulator(circuit, fusion="codegen")
    fused_sim.detected_faults(vectors[:4], faults)  # warm the cone lowering
    fused_seconds, fused_masks = _best_of_runs(
        repeat, lambda: fused_sim.detected_faults(vectors, faults)
    )
    if fused_masks != interp_masks:
        raise AssertionError(
            f"fused and interp stuck-at simulation disagree on {circuit.name}"
        )
    row["codegen_seconds"] = round(fused_seconds, 6)
    row["codegen_throughput"] = round(work / fused_seconds, 1)
    row["best_fused"] = "codegen"
    row["fused_speedup"] = round(interp_seconds / fused_seconds, 2)
    if native and _native_ready():
        native_sim = StuckAtSimulator(circuit, backend="native")
        native_sim.detected_faults(vectors[:4], faults)  # warm the C build
        seconds, masks = _best_of_runs(
            repeat, lambda: native_sim.detected_faults(vectors, faults)
        )
        if masks != interp_masks:
            raise AssertionError(
                f"native and interp stuck-at simulation disagree on "
                f"{circuit.name}"
            )
        _native_columns(row, work, interp_seconds, seconds)
    return row


def bench_bist(
    circuit: Circuit,
    test_class: TestClass,
    n_patterns: int = 1024,
    fault_cap: int = 128,
    repeat: int = 3,
    seed: int = 1,
    strategies: tuple = ("vector", "codegen"),
    native: bool = False,
) -> Dict[str, object]:
    """Time one BIST grading round per execution strategy.

    The workload is what :func:`repro.bist.run_bist` does per window,
    at full batch width: a primitive-polynomial LFSR emits
    *n_patterns* consecutive launch/capture state pairs directly in
    packed lane-slab form and every path delay fault is graded against
    the slab.  Slab generation is timed together with the simulation —
    for a BIST engine pattern delivery *is* part of the workload — and
    it is re-run from the same seed every repeat so each tier grades
    the identical pseudorandom sequence.  Detection masks are asserted
    equal lane-for-lane across every tier, as in :func:`bench_ppsfp`.
    """
    from .bist import LFSR
    from .sim import DelayFaultSimulator

    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    faults = fault_list(circuit, cap=fault_cap, strategy="all")
    n_pis = len(circuit.inputs)
    work = n_patterns * len(faults)

    def slab(count: int = n_patterns):
        return LFSR(32, seed=seed).take(count, n_pis, two_vector=True)

    row: Dict[str, object] = {
        "circuit": circuit.name,
        "workload": "bist",
        "test_class": test_class.value,
        "signals": circuit.num_signals,
        "faults": len(faults),
        "patterns": n_patterns,
    }
    interp_sim = DelayFaultSimulator(
        circuit, test_class, backend="numpy", fusion="interp"
    )
    interp_seconds, interp_masks = _best_of_runs(
        repeat, lambda: interp_sim.detected_faults(slab(), faults)
    )
    row["interp_seconds"] = round(interp_seconds, 6)
    row["interp_throughput"] = round(work / interp_seconds, 1)
    fused_best: Optional[Tuple[float, str]] = None
    for strategy in strategies:
        sim = DelayFaultSimulator(
            circuit, test_class, backend="numpy", fusion=strategy
        )
        sim.detected_faults(slab(64), faults[:1])  # warm the lowering
        seconds, masks = _best_of_runs(
            repeat, lambda sim=sim: sim.detected_faults(slab(), faults)
        )
        if masks != interp_masks:
            raise AssertionError(
                f"{strategy} and interp BIST grading disagree on {circuit.name}"
            )
        row[f"{strategy}_seconds"] = round(seconds, 6)
        row[f"{strategy}_throughput"] = round(work / seconds, 1)
        if fused_best is None or seconds < fused_best[0]:
            fused_best = (seconds, strategy)
    if fused_best is not None:
        row["best_fused"] = fused_best[1]
        row["fused_speedup"] = round(interp_seconds / fused_best[0], 2)
    if native and _native_ready():
        sim = DelayFaultSimulator(
            circuit, test_class, backend="native", fusion="auto"
        )
        sim.detected_faults(slab(64), faults[:1])  # warm the C build
        seconds, masks = _best_of_runs(
            repeat, lambda: sim.detected_faults(slab(), faults)
        )
        if masks != interp_masks:
            raise AssertionError(
                f"native and interp BIST grading disagree on {circuit.name}"
            )
        _native_columns(row, work, interp_seconds, seconds)
    return row


def main_bench_sim(argv: Optional[List[str]] = None) -> int:
    """Simulation throughput: interpreted kernel vs fused vs native."""
    parser = argparse.ArgumentParser(
        prog="tip-bench-sim",
        description=(
            "Simulation throughput (patterns x faults per second) per "
            "execution strategy.  Workloads: PPSFP detection masks (seed "
            "object-graph path vs the compiled kernel's interpreted loop "
            "vs the fused strategies vs the compiled-C native backend), "
            "10-valued detection-strength grading, stuck-at cone "
            "resimulation, and BIST grading over LFSR-generated slabs."
        ),
    )
    parser.add_argument(
        "circuits",
        nargs="*",
        default=["c880"],
        help="circuit specs (default: the c880-scale generator suite row)",
    )
    _add_test_class_argument(parser, default="robust")
    parser.add_argument(
        "--workload",
        choices=["ppsfp", "grade10", "stuck-at", "bist", "all"],
        default="ppsfp",
        help="which simulation workload to time (default: ppsfp)",
    )
    parser.add_argument("--patterns", type=int, default=4096, help="batch size")
    parser.add_argument(
        "--fault-cap", type=int, default=128, help="cap on the fault list"
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of runs")
    parser.add_argument("--scale", type=int, default=1, help="suite circuit scale")
    parser.add_argument(
        "--fusion",
        choices=["both", "vector", "codegen"],
        default="both",
        help="which fused strategies to time against the interpreted loop",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "numpy", "native"],
        default="auto",
        help="word backends to time: 'auto' runs the fused numpy "
        "strategies plus the compiled-C backend when a toolchain is "
        "available, 'numpy' skips native, 'native' times only the "
        "interpreted baseline against the compiled-C backend",
    )
    parser.add_argument(
        "--no-seed",
        action="store_true",
        help="skip the seed object-graph baseline (it dominates the bench "
        "wall-clock on large circuits)",
    )
    parser.add_argument(
        "--json", dest="json_path", default=None, help="also write rows as JSON"
    )
    args = parser.parse_args(argv)

    test_class = resolve_test_class(args.test_class)
    strategies = (
        ("vector", "codegen") if args.fusion == "both" else (args.fusion,)
    )
    if args.backend == "native":
        strategies = ()  # interp baseline vs the compiled-C tier only
    native = args.backend != "numpy"
    if args.backend == "native" and not _native_ready():
        from .kernel.native import native_unavailable_reason

        parser.error(
            f"--backend native requires a C toolchain "
            f"({native_unavailable_reason()})"
        )
    workloads = (
        ("ppsfp", "grade10", "stuck-at", "bist")
        if args.workload == "all"
        else (args.workload,)
    )
    rows = []
    for spec in args.circuits:
        circuit = resolve_circuit(spec, args.scale)
        if "ppsfp" in workloads:
            rows.append(
                bench_ppsfp(
                    circuit,
                    test_class,
                    n_patterns=args.patterns,
                    fault_cap=args.fault_cap,
                    repeat=args.repeat,
                    strategies=strategies,
                    seed_baseline=not args.no_seed,
                    native=native,
                )
            )
        if "grade10" in workloads:
            rows.append(
                bench_grade10(
                    circuit,
                    n_patterns=args.patterns,
                    fault_cap=args.fault_cap,
                    repeat=args.repeat,
                    strategies=strategies,
                    native=native,
                )
            )
        if "stuck-at" in workloads:
            rows.append(
                bench_stuck_at(
                    circuit,
                    n_vectors=min(args.patterns, 512),
                    fault_cap=args.fault_cap,
                    repeat=args.repeat,
                    native=native,
                )
            )
        if "bist" in workloads:
            rows.append(
                bench_bist(
                    circuit,
                    test_class,
                    n_patterns=args.patterns,
                    fault_cap=args.fault_cap,
                    repeat=args.repeat,
                    strategies=strategies,
                    native=native,
                )
            )
    print(
        render_table(
            rows,
            title="Simulation throughput: interpreted kernel vs fused",
        )
    )
    if args.json_path:
        payload = stamp(
            "repro/bench-kernel",
            {
                "benchmark": "fused_kernel_throughput",
                "units": "patterns*faults/second",
                "python": platform.python_version(),
                "rows": rows,
            },
        )
        with open(args.json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_path}")
    return 0


# ---------------------------------------------------------------------------
# tip experiments
# ---------------------------------------------------------------------------

_EXPERIMENTS = {
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    "table8": run_table8,
    "ablation-L": run_ablation_word_length,
    "ablation-modes": run_ablation_modes,
    "ablation-implications": run_ablation_implications,
    "campaign-scaling": run_campaign_scaling,
}


def main_experiments(argv: Optional[List[str]] = None) -> int:
    """Regenerate the paper's tables and figures."""
    parser = argparse.ArgumentParser(
        prog="tip-experiments",
        description="Regenerate the paper's experiment tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["figure1", "figure2", "all-tables"],
        help="which experiment to run",
    )
    parser.add_argument("--scale", type=int, default=1, help="suite circuit scale")
    parser.add_argument(
        "--fault-cap", type=int, default=None, help="cap on faults per circuit"
    )
    args = parser.parse_args(argv)

    if args.experiment == "figure1":
        result = run_figure1()
        print("Figure 1 — FPTPG for 4 paths (bit levels 0..3):")
        for fault, status in zip(result["faults"], result["statuses"]):
            print(f"  {fault.describe(result['circuit'])}: {status}")
        print("lane words (level 3..0):")
        for name, word in result["lane_words"].items():
            print(f"  {name}: {word}")
        return 0
    if args.experiment == "figure2":
        result = run_figure2()
        print("Figure 2 — APTPG for path a-p-x (falling):")
        print(f"  status: {result['status']}, splits: {result['splits_used']}")
        for name, word in result["lane_words"].items():
            print(f"  {name}: {word}")
        return 0

    kwargs = {}
    if args.fault_cap is not None:
        kwargs["fault_cap"] = args.fault_cap
    if args.experiment == "all-tables":
        for name in ("table3", "table4", "table5", "table6", "table7", "table8"):
            rows = _EXPERIMENTS[name](scale=args.scale, **kwargs)
            print(render_table(rows, title=f"{name} (reproduction)"))
            print()
        return 0
    runner = _EXPERIMENTS[args.experiment]
    rows = runner(scale=args.scale, **kwargs)
    print(render_table(rows, title=f"{args.experiment} (reproduction)"))
    return 0


# ---------------------------------------------------------------------------
# tip serve
# ---------------------------------------------------------------------------


def main_serve(argv: Optional[List[str]] = None) -> int:
    """Run the JSON service endpoint (repro.api.service)."""
    from .api.options import ServiceOptions
    from .api.service import DEFAULT_PORT, AtpgService, run_server

    parser = argparse.ArgumentParser(
        prog="tip-serve",
        description=(
            "Long-lived multi-tenant JSON service over the AtpgSession "
            "façade: POST /v1/generate|simulate|grade|paths run "
            "synchronously; POST /v1/campaign returns a job id "
            "immediately (poll GET /v1/jobs/<id>, cancel with POST "
            "/v1/jobs/<id>/cancel).  Sessions are cached by circuit "
            "hash with single-flight lowering; with "
            "--coalesce-window-ms > 0, concurrent simulate/grade "
            "requests against the same circuit merge into one shared "
            "lane slab (one kernel call, demultiplexed per request, "
            "bit-identical to serial).  A full job queue answers 429 "
            "with Retry-After."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "quick start:\n"
            "  tip serve --port 8470 --workers 2 --coalesce-window-ms 5 \\\n"
            "            --jobs-dir /var/tmp/tip-jobs &\n"
            "  curl -s localhost:8470/v1/healthz\n"
            "  curl -s -XPOST localhost:8470/v1/campaign -H 'X-Tenant: me' \\\n"
            "    -d '{\"schema\":\"repro/request.campaign\","
            "\"schema_version\":1,\"circuit\":\"c880\"}'\n"
            "  curl -s localhost:8470/v1/jobs/<id>   # poll state/progress\n"
            "  curl -s localhost:8470/v1/metrics     # counters + queue depth\n"
            "SIGTERM drains gracefully: running campaigns checkpoint and\n"
            "resume on the next start over the same --jobs-dir."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="TCP port (0 = auto)"
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=8,
        help="circuits kept lowered in the LRU session cache",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="job-queue worker threads executing async campaigns",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=32,
        help="queued-job bound; beyond it submissions get 429 + Retry-After",
    )
    parser.add_argument(
        "--coalesce-window-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help=(
            "merge window for concurrent same-circuit simulate/grade "
            "requests (0 disables coalescing)"
        ),
    )
    parser.add_argument(
        "--jobs-dir",
        default=None,
        metavar="DIR",
        help=(
            "directory for job records and campaign checkpoints; "
            "enables restart recovery (default: in-memory only)"
        ),
    )
    parser.add_argument(
        "--max-jobs-per-tenant",
        type=int,
        default=0,
        metavar="N",
        help="active jobs one X-Tenant may hold at once (0 = unlimited)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the structured JSON access log (stderr)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="install a deterministic fault-injection JSON schedule in this "
        'process, e.g. \'{"points": [{"site": "kernel_fault", "at": [0]}]}\' '
        "(testing only)",
    )
    args = parser.parse_args(argv)
    if args.chaos is not None:
        from . import chaos as chaos_module

        chaos_module.install(args.chaos)
    config = ServiceOptions(
        workers=args.workers,
        max_queue=args.max_queue,
        coalesce_window_ms=args.coalesce_window_ms,
        jobs_dir=args.jobs_dir,
        max_sessions=args.max_sessions,
        max_jobs_per_tenant=args.max_jobs_per_tenant,
    )
    run_server(
        host=args.host,
        port=args.port,
        service=AtpgService(config=config),
        quiet=args.quiet,
    )
    return 0


# ---------------------------------------------------------------------------
# tip validate
# ---------------------------------------------------------------------------


def main_validate(argv: Optional[List[str]] = None) -> int:
    """Validate JSON artifacts against the schema registry."""
    parser = argparse.ArgumentParser(
        prog="tip-validate",
        description=(
            "Validate JSON artifacts (benchmark files, checkpoints, "
            "serialized reports) against the versioned schema registry.  "
            "Fails on unknown kinds/versions and on shape drift without a "
            "schema version bump."
        ),
    )
    parser.add_argument(
        "files",
        nargs="*",
        default=None,
        help="artifact paths (default: the checked-in BENCH_*.json)",
    )
    args = parser.parse_args(argv)
    files = args.files
    if not files:
        import glob

        files = sorted(glob.glob("BENCH_*.json"))
        if not files:
            print("no artifacts found (pass paths explicitly)")
            return 1
    failures = 0
    for path in files:
        try:
            kind, version = validate_file(path)
        except SchemaError as exc:
            print(f"FAIL {exc}")
            failures += 1
        except OSError as exc:
            print(f"FAIL {path}: {exc}")
            failures += 1
        else:
            print(f"ok   {path}: {kind} v{version}")
    if failures:
        print(f"{failures} of {len(files)} artifact(s) failed validation")
        return 1
    return 0


# ---------------------------------------------------------------------------
# the tip dispatcher
# ---------------------------------------------------------------------------

COMMANDS = {
    "atpg": main_atpg,
    "bist": main_bist,
    "campaign": main_campaign,
    "paths": main_paths,
    "bench-sim": main_bench_sim,
    "experiments": main_experiments,
    "serve": main_serve,
    "validate": main_validate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """The ``tip`` multi-command entry point."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: tip <command> [options]")
        print()
        print("commands:")
        for name, fn in sorted(COMMANDS.items()):
            summary = (fn.__doc__ or "").strip().splitlines()
            doc = summary[0] if summary else ""
            print(f"  {name:12} {doc}")
        print()
        print("run 'tip <command> --help' for command options")
        return 0
    command, rest = argv[0], argv[1:]
    if command not in COMMANDS:
        known = ", ".join(sorted(COMMANDS))
        raise SystemExit(f"tip: unknown command {command!r} (choose from {known})")
    return COMMANDS[command](rest)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
