"""Command-line interface.

Three entry points (also installed as console scripts):

* ``tip-atpg`` — generate robust/nonrobust path delay tests for a
  circuit (a ``.bench`` file, an embedded circuit, or a suite name).
* ``tip-paths`` — count/enumerate structural paths and faults.
* ``tip-experiments`` — regenerate the paper's tables and figures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    render_table,
    run_ablation_implications,
    run_ablation_modes,
    run_ablation_word_length,
    run_figure1,
    run_figure2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)
from .circuit import Circuit, load_bench
from .circuit.library import EMBEDDED, load_embedded
from .circuit.suites import suite_circuit
from .core import TpgOptions, generate_tests
from .logic.words import DEFAULT_WORD_LENGTH
from .paths import (
    TestClass,
    count_faults,
    count_paths,
    fault_list,
    iter_paths,
    path_length_histogram,
)


def resolve_circuit(spec: str, scale: int = 1) -> Circuit:
    """Interpret a circuit spec: file path, embedded name, suite name."""
    if spec.endswith(".bench"):
        return load_bench(spec)
    if spec in EMBEDDED:
        return load_embedded(spec)
    try:
        return suite_circuit(spec, scale)
    except ValueError:
        pass
    known = ", ".join(sorted(EMBEDDED))
    raise SystemExit(
        f"unknown circuit {spec!r}: expected a .bench file, an embedded "
        f"circuit ({known}) or an ISCAS suite name (c432, s1423, ...)"
    )


# ---------------------------------------------------------------------------
# tip-atpg
# ---------------------------------------------------------------------------


def main_atpg(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tip-atpg",
        description="Bit-parallel path delay fault test generation (TIP).",
    )
    parser.add_argument("circuit", help=".bench file, embedded or suite circuit name")
    parser.add_argument(
        "--class",
        dest="test_class",
        choices=["robust", "nonrobust"],
        default="nonrobust",
        help="test class (default: nonrobust)",
    )
    parser.add_argument(
        "--width", type=int, default=DEFAULT_WORD_LENGTH, help="word length L"
    )
    parser.add_argument(
        "--max-faults", type=int, default=None, help="cap on the fault list"
    )
    parser.add_argument(
        "--strategy",
        choices=["all", "longest", "sample"],
        default="all",
        help="fault selection strategy",
    )
    parser.add_argument("--scale", type=int, default=1, help="suite circuit scale")
    parser.add_argument(
        "--single-bit",
        action="store_true",
        help="restrict the generator to one bit level (the baseline)",
    )
    parser.add_argument(
        "--no-drop", action="store_true", help="disable fault dropping"
    )
    parser.add_argument(
        "--patterns", action="store_true", help="print the generated patterns"
    )
    args = parser.parse_args(argv)

    circuit = resolve_circuit(args.circuit, args.scale)
    faults = fault_list(circuit, cap=args.max_faults, strategy=args.strategy)
    test_class = TestClass.ROBUST if args.test_class == "robust" else TestClass.NONROBUST
    options = TpgOptions(
        width=1 if args.single_bit else args.width,
        drop_faults=not args.no_drop,
    )
    report = generate_tests(circuit, faults, test_class, options)
    print(render_table([report.summary()], title=f"{circuit.name}: ATPG summary"))
    if args.patterns:
        print()
        for record in report.records:
            if record.pattern is not None:
                print(record.pattern.describe(circuit))
    return 0


# ---------------------------------------------------------------------------
# tip-paths
# ---------------------------------------------------------------------------


def main_paths(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tip-paths",
        description="Structural path counting and enumeration.",
    )
    parser.add_argument("circuit", help=".bench file, embedded or suite circuit name")
    parser.add_argument("--scale", type=int, default=1, help="suite circuit scale")
    parser.add_argument(
        "--list", type=int, default=0, metavar="N", help="print the first N paths"
    )
    parser.add_argument(
        "--histogram", action="store_true", help="print the path-length histogram"
    )
    args = parser.parse_args(argv)

    circuit = resolve_circuit(args.circuit, args.scale)
    stats = circuit.stats()
    print(f"circuit   : {circuit.name}")
    print(f"inputs    : {stats['inputs']}")
    print(f"gates     : {stats['gates']}")
    print(f"outputs   : {stats['outputs']}")
    print(f"depth     : {stats['depth']}")
    print(f"paths     : {count_paths(circuit)}")
    print(f"faults    : {count_faults(circuit)}")
    if args.histogram:
        rows = [
            {"length": length, "paths": count}
            for length, count in sorted(path_length_histogram(circuit).items())
        ]
        print()
        print(render_table(rows, title="path length histogram"))
    if args.list:
        print()
        for path in iter_paths(circuit, max_paths=args.list):
            print("-".join(circuit.signal_name(s) for s in path))
    return 0


# ---------------------------------------------------------------------------
# tip-experiments
# ---------------------------------------------------------------------------

_EXPERIMENTS = {
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    "table8": run_table8,
    "ablation-L": run_ablation_word_length,
    "ablation-modes": run_ablation_modes,
    "ablation-implications": run_ablation_implications,
}


def main_experiments(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tip-experiments",
        description="Regenerate the paper's experiment tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["figure1", "figure2", "all-tables"],
        help="which experiment to run",
    )
    parser.add_argument("--scale", type=int, default=1, help="suite circuit scale")
    parser.add_argument(
        "--fault-cap", type=int, default=None, help="cap on faults per circuit"
    )
    args = parser.parse_args(argv)

    if args.experiment == "figure1":
        result = run_figure1()
        print("Figure 1 — FPTPG for 4 paths (bit levels 0..3):")
        for fault, status in zip(result["faults"], result["statuses"]):
            print(f"  {fault.describe(result['circuit'])}: {status}")
        print("lane words (level 3..0):")
        for name, word in result["lane_words"].items():
            print(f"  {name}: {word}")
        return 0
    if args.experiment == "figure2":
        result = run_figure2()
        print("Figure 2 — APTPG for path a-p-x (falling):")
        print(f"  status: {result['status']}, splits: {result['splits_used']}")
        for name, word in result["lane_words"].items():
            print(f"  {name}: {word}")
        return 0

    kwargs = {}
    if args.fault_cap is not None:
        kwargs["fault_cap"] = args.fault_cap
    if args.experiment == "all-tables":
        for name in ("table3", "table4", "table5", "table6", "table7", "table8"):
            rows = _EXPERIMENTS[name](scale=args.scale, **kwargs)
            print(render_table(rows, title=f"{name} (reproduction)"))
            print()
        return 0
    runner = _EXPERIMENTS[args.experiment]
    if args.experiment.startswith("ablation"):
        rows = runner(scale=args.scale, **kwargs)
    else:
        rows = runner(scale=args.scale, **kwargs)
    print(render_table(rows, title=f"{args.experiment} (reproduction)"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_atpg())
