#!/usr/bin/env python
"""Regenerate BENCH_tpg.json: end-to-end ATPG throughput (faults/sec).

Three runners over the identical fault list of the c880-scale suite
row (and a second, harder random-DAG row that exercises APTPG and
dropping):

* the serial engine (``generate_tests`` — itself a 1-worker campaign),
* a 1-worker campaign (measures the pipeline's own overhead),
* an N-worker campaign (``--workers``, default: min(4, cpu_count)),
  with ``shards = workers`` so every process has a batch per round.

The campaign schedule is worker-invariant, so the detected-fault count
must match the serial engine exactly on the default-shards rows; the
N-worker row uses a wider round (more shards) and asserts equal
coverage instead.  Throughput is faults per wall-clock second, best of
``--repeat`` runs.  Usage::

    PYTHONPATH=src python scripts/bench_tpg.py [output.json]
        [--workers N] [--fault-cap N] [--repeat N] [--scale N]
"""

import argparse
import json
import multiprocessing
import platform
import sys
import time

from repro.api import AtpgSession, Options
from repro.api.schemas import stamp
from repro.circuit.generators import random_dag
from repro.circuit.suites import suite_circuit
from repro.paths import TestClass, fault_list


def _workload(name, scale, fault_cap):
    if name == "c880":
        circuit = suite_circuit("c880", scale)
    else:
        circuit = random_dag(12, 60 * scale, seed=1995, name="dag60")
    return circuit, fault_list(circuit, cap=fault_cap, strategy="all")


def _best_of(repeat, fn):
    best_seconds = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        best_seconds = min(best_seconds, time.perf_counter() - t0)
    return best_seconds, result


def bench_circuit(name, circuit, faults, test_class, width, workers, repeat):
    rows = []
    session = AtpgSession(circuit)  # lowers once, outside the timed region

    seconds, serial = _best_of(
        repeat,
        lambda: session.generate(faults, test_class=test_class, width=width),
    )
    serial_seconds = seconds
    rows.append(
        {
            "circuit": name,
            "runner": "engine_serial",
            "fusion": "auto",
            "workers": 1,
            "shards": 2,
            "faults": serial.n_faults,
            "detected": serial.n_tested,
            "seconds": round(seconds, 6),
            "faults_per_s": round(serial.n_faults / seconds, 1),
            "speedup_vs_serial": 1.0,
        }
    )

    # contrast row: the identical serial engine pinned to the per-gate
    # interpreter loop — the end-to-end cost of not fusing.  Statuses
    # are bit-identical by the fusion contract, so detected must match.
    seconds, interp = _best_of(
        repeat,
        lambda: session.generate(
            faults, test_class=test_class, width=width, fusion="interp"
        ),
    )
    if interp.n_tested != serial.n_tested:
        raise AssertionError(
            f"engine_serial fusion=interp detected {interp.n_tested} != "
            f"fused {serial.n_tested} on {name}"
        )
    rows.append(
        {
            "circuit": name,
            "runner": "engine_serial",
            "fusion": "interp",
            "workers": 1,
            "shards": 2,
            "faults": interp.n_faults,
            "detected": interp.n_tested,
            "seconds": round(seconds, 6),
            "faults_per_s": round(interp.n_faults / seconds, 1),
            "speedup_vs_serial": round(serial_seconds / seconds, 2),
        }
    )

    configs = [("campaign_1worker", 1, 2)]
    if workers > 1:
        configs.append((f"campaign_{workers}workers", workers, workers))
    for runner, n_workers, shards in configs:
        options = Options(width=width, workers=n_workers, shards=shards)
        seconds, report = _best_of(
            repeat,
            lambda options=options: session.campaign(
                faults=faults, test_class=test_class, options=options
            ),
        )
        if shards == 2 and report.n_detected != serial.n_tested:
            raise AssertionError(
                f"{runner} detected {report.n_detected} != serial "
                f"{serial.n_tested} on {name}"
            )
        if report.n_faults != serial.n_faults:
            raise AssertionError(f"{runner} fault count mismatch on {name}")
        rows.append(
            {
                "circuit": name,
                "runner": runner,
                "fusion": options.fusion,
                "workers": n_workers,
                "shards": shards,
                "faults": report.n_faults,
                "detected": report.n_detected,
                "seconds": round(seconds, 6),
                "faults_per_s": round(report.n_faults / seconds, 1),
                "speedup_vs_serial": round(serial_seconds / seconds, 2),
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output", nargs="?", default="BENCH_tpg.json")
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, min(4, multiprocessing.cpu_count())),
        help="worker count of the multi-process row",
    )
    parser.add_argument("--fault-cap", type=int, default=512)
    parser.add_argument("--width", type=int, default=32)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument(
        "--class",
        dest="test_class",
        choices=["robust", "nonrobust"],
        default="robust",
    )
    args = parser.parse_args(argv)
    test_class = (
        TestClass.ROBUST if args.test_class == "robust" else TestClass.NONROBUST
    )

    rows = []
    for name in ("c880", "dag60"):
        circuit, faults = _workload(name, args.scale, args.fault_cap)
        rows.extend(
            bench_circuit(
                name,
                circuit,
                faults,
                test_class,
                args.width,
                args.workers,
                args.repeat,
            )
        )

    payload = stamp("repro/bench-tpg", {
        "benchmark": "tpg_end_to_end_throughput",
        "units": "faults/second (wall clock, best of repeat)",
        "python": platform.python_version(),
        "cpu_count": multiprocessing.cpu_count(),
        "workers": args.workers,
        "note": (
            "speedup_vs_serial >= 1.5 on the multi-worker rows requires a "
            "multi-core runner; on a single core the pool only adds overhead"
        ),
        "rows": rows,
    })
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    header = (
        f"{'circuit':8} {'runner':22} {'fusion':7} {'workers':7} "
        f"{'faults/s':>10} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['circuit']:8} {row['runner']:22} {row['fusion']:7} "
            f"{row['workers']:7} {row['faults_per_s']:>10} "
            f"{row['speedup_vs_serial']:>8}"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
