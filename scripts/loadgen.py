#!/usr/bin/env python
"""Regenerate BENCH_service.json: multi-tenant service throughput.

Drives the real HTTP stack (``repro.api.service`` behind a loopback
``ThreadingHTTPServer``, keep-alive connections) with concurrent
clients issuing grade requests — each client a distinct tenant with
its own seeded pattern set against the same circuit — and measures
aggregate throughput and per-request latency percentiles at 1/8/32
concurrent clients, with request coalescing off and on.

Coalescing is the paper's bit-parallel idea applied across requests:
each client's 32-pattern batch under-fills the machine word, so
concurrent same-circuit batches merge into one shared
``PackedPatterns`` lane slab, execute as a single kernel call over
full words, and demultiplex per request.  The run asserts correctness
as it measures: every client's ``detected_flags`` with coalescing on
must equal its flags with coalescing off (bit-identical demux).
Usage::

    PYTHONPATH=src python scripts/loadgen.py [output.json]
    PYTHONPATH=src python scripts/loadgen.py --smoke [output.json]
    PYTHONPATH=src python scripts/loadgen.py --check [output.json]
    PYTHONPATH=src python scripts/loadgen.py --chaos [--smoke] [output.json]

``--smoke`` is the fast CI variant (2 clients, a couple of requests
each, small circuit) proving the serve/coalesce/measure loop end to
end.  ``--check`` is the CI soft perf guard: it re-reads the JSON and
fails unless coalescing-on throughput is at least :data:`MIN_SPEEDUP`
x the coalescing-off throughput on the heaviest (32-client) workload
(absolute numbers are only trusted from CI hardware; correctness is
asserted during regeneration).

``--chaos`` is the availability-under-faults run: against one live
server it (a) kills the only job-worker thread the instant it claims
a campaign job and asserts the job still finishes (thread
resurrection + re-queue), then (b) injects kernel faults under a
concurrent grade hammer and asserts zero client-visible errors with
bit-identical flags (circuit-breaker degradation).  The fault
schedule is deterministic (:mod:`repro.chaos`); the resulting
``workload: "chaos"`` row merges into the benchmark artifact.
"""

import argparse
import json
import platform
import random
import socket
import sys
import tempfile
import threading
import time
from http.client import HTTPConnection

from repro import chaos
from repro.api import ServiceOptions
from repro.api.resolve import resolve_circuit
from repro.api.schemas import stamp, validate, validate_file
from repro.api.serde import fault_to_payload, pattern_to_payload
from repro.api.service import make_server
from repro.core.patterns import TestPattern
from repro.paths import fault_list

#: The measured workload: a deep generated circuit (~4k gates at
#: scale 2) where the simulation kernel — the part coalescing
#: amortizes — dominates the per-request wire handling, each
#: request's 32 patterns fill only half a machine word, and the
#: coalescing window is wide enough for every concurrent client to
#: join one shared slab (merge factor ~ window / per-request decode
#: cost, about 2 ms each).
CIRCUIT = "bulk2k"
SCALE = 2
PATTERNS_PER_REQUEST = 32
FAULT_CAP = 32
WINDOW_MS = 60.0
GUARD_CLIENTS = 32
MIN_SPEEDUP = 2.0
WORKERS = 2  # job-queue workers; recorded in the envelope


def _client_patterns(n_inputs: int, n: int, seed: int):
    """A deterministic per-client two-vector pattern set."""
    rng = random.Random(0xC0A1E5CE + seed)
    out = []
    for _ in range(n):
        v1 = tuple(rng.randint(0, 1) for _ in range(n_inputs))
        v2 = tuple(rng.randint(0, 1) for _ in range(n_inputs))
        out.append(TestPattern(v1, v2))
    return out


def _grade_payload(circuit_spec, scale, patterns, fault_payloads) -> bytes:
    body = stamp(
        "repro/request.grade",
        {
            "circuit": circuit_spec,
            "scale": scale,
            "patterns": [
                pattern_to_payload(p, envelope=False) for p in patterns
            ],
            "faults": fault_payloads,
        },
    )
    return json.dumps(body).encode()


def _percentile(sorted_ms, fraction: float) -> float:
    if not sorted_ms:
        return 0.0
    index = min(len(sorted_ms) - 1, int(round(fraction * (len(sorted_ms) - 1))))
    return sorted_ms[index]


def _connect(port: int) -> HTTPConnection:
    """A keep-alive connection with Nagle off (no delayed-ACK stalls)."""
    conn = HTTPConnection("127.0.0.1", port)
    conn.connect()
    conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return conn


def _post(conn: HTTPConnection, body: bytes, tenant: str):
    conn.request(
        "POST",
        "/v1/grade",
        body=body,
        headers={"Content-Type": "application/json", "X-Tenant": tenant},
    )
    return json.loads(conn.getresponse().read())


def run_row(
    workload,
    clients: int,
    coalesce: bool,
    requests_per_client: int,
    flags_by_client,
):
    """One measured configuration: start a server, hammer it, tear down.

    *flags_by_client* accumulates/checks each client's
    ``detected_flags`` across the coalesce-off and coalesce-on rows of
    the same client count — the bit-identical demux assertion.
    """
    window_ms = WINDOW_MS if coalesce else 0.0
    config = ServiceOptions(coalesce_window_ms=window_ms, workers=WORKERS)
    server = make_server(port=0, config=config, quiet=True)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    port = server.server_address[1]

    bodies = [workload["bodies"][k % len(workload["bodies"])] for k in range(clients)]
    # warm up outside the timed window: the first grade lowers the
    # circuit + compiles the single-word kernel, the wide batch
    # compiles the multi-word (merged-slab) kernel
    warm = _connect(port)
    assert _post(warm, bodies[0], "warmup")["ok"]
    assert _post(warm, workload["wide_body"], "warmup")["ok"]
    warm.close()

    latencies_ms = []
    errors = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        conn = _connect(port)
        barrier.wait()
        for _ in range(requests_per_client):
            t0 = time.perf_counter()
            try:
                try:
                    reply = _post(conn, bodies[index], f"client-{index}")
                except OSError:  # server closed the idle socket: retry once
                    conn.close()
                    conn = _connect(port)
                    reply = _post(conn, bodies[index], f"client-{index}")
                ok = reply.get("ok", False)
            except OSError:
                ok = False
            elapsed_ms = (time.perf_counter() - t0) * 1000.0
            with lock:
                if not ok:
                    errors[0] += 1
                else:
                    latencies_ms.append(elapsed_ms)
                    flags = reply["result"]["detected_flags"]
                    key = (clients, index)
                    if key in flags_by_client:
                        assert flags_by_client[key] == flags, (
                            f"client {index}: coalesced grade differs from "
                            f"uncoalesced grade"
                        )
                    else:
                        flags_by_client[key] = flags
        conn.close()

    threads = [
        threading.Thread(target=client, args=(k,)) for k in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    t_start = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - t_start
    server.shutdown()
    server.server_close()
    server.service.shutdown()

    total = clients * requests_per_client
    latencies_ms.sort()
    return {
        "workload": "grade",
        "circuit": workload["name"],
        "clients": clients,
        "coalesce": coalesce,
        "window_ms": window_ms,
        "patterns_per_request": workload["patterns_per_request"],
        "faults": workload["faults"],
        "requests": total,
        "errors": errors[0],
        "seconds": round(seconds, 4),
        "requests_per_s": round(total / seconds, 2) if seconds else 0.0,
        "p50_ms": round(_percentile(latencies_ms, 0.50), 2),
        "p95_ms": round(_percentile(latencies_ms, 0.95), 2),
    }


def _build_workload(smoke: bool):
    """Pre-serialize every client's request body (not timed)."""
    spec = "c880" if smoke else CIRCUIT
    scale = 1 if smoke else SCALE
    patterns = 16 if smoke else PATTERNS_PER_REQUEST
    fault_cap = 32 if smoke else FAULT_CAP
    max_clients = 2 if smoke else GUARD_CLIENTS
    circuit = resolve_circuit(spec, scale)
    n_inputs = len(circuit.inputs)
    fault_payloads = [
        fault_to_payload(f, envelope=False)
        for f in fault_list(circuit, cap=fault_cap)
    ]
    return {
        "name": circuit.name,
        "patterns_per_request": patterns,
        "faults": len(fault_payloads),
        "bodies": [
            _grade_payload(
                spec, scale,
                _client_patterns(n_inputs, patterns, seed=k),
                fault_payloads,
            )
            for k in range(max_clients)
        ],
        # > 64 lanes: forces the multi-word kernel to compile at warmup
        "wide_body": _grade_payload(
            spec, scale,
            _client_patterns(n_inputs, 96, seed=10_000),
            fault_payloads,
        ),
    }


def regenerate(out: str, smoke: bool = False) -> int:
    workload = _build_workload(smoke)
    requests_per_client = 2 if smoke else 6
    client_counts = (2,) if smoke else (1, 8, 32)
    rows = []
    flags_by_client = {}
    for clients in client_counts:
        off = run_row(
            workload, clients, False, requests_per_client, flags_by_client
        )
        on = run_row(
            workload, clients, True, requests_per_client, flags_by_client
        )
        if off["requests_per_s"]:
            on["speedup_vs_uncoalesced"] = round(
                on["requests_per_s"] / off["requests_per_s"], 3
            )
        rows.extend([off, on])
        for row in (off, on):
            print(
                f"{row['clients']:>3} clients "
                f"coalesce={str(row['coalesce']).lower():<5} "
                f"{row['requests_per_s']:>8.2f} req/s  "
                f"p50={row['p50_ms']:>8.2f}ms  p95={row['p95_ms']:>8.2f}ms  "
                f"errors={row['errors']}"
            )
    payload = stamp(
        "repro/bench-service",
        {
            "benchmark": "service_throughput",
            "units": "requests/second",
            "python": platform.python_version(),
            "workers": WORKERS,
            "rows": rows,
        },
    )
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")
    return 0


def run_chaos(out: str, smoke: bool = False) -> int:
    """Availability under injected faults, against one live server.

    Phase A — worker death: schedule ``job_worker_death`` at the first
    claim, submit an async campaign, and poll until done (each poll
    runs the manager's liveness sweep, which re-queues the orphaned
    job and spawns a replacement thread).  Phase B — kernel faults:
    schedule ``kernel_fault`` occurrences under a concurrent grade
    hammer; the session circuit breaker absorbs them, so every
    request must succeed with flags bit-identical to the fault-free
    baseline.  Wall-clock is measured over the hammer only.
    """
    clients = 2 if smoke else 4
    requests_per_client = 3 if smoke else 8
    spec = "c880"
    scale = 1
    circuit = resolve_circuit(spec, scale)
    fault_payloads = [
        fault_to_payload(f, envelope=False)
        for f in fault_list(circuit, cap=16)
    ]
    bodies = [
        _grade_payload(
            spec, scale,
            _client_patterns(len(circuit.inputs), 8, seed=k),
            fault_payloads,
        )
        for k in range(clients)
    ]
    campaign_body = json.dumps(
        stamp(
            "repro/request.campaign",
            {"circuit": spec, "scale": scale, "max_faults": 16},
        )
    ).encode()

    with tempfile.TemporaryDirectory() as jobs_dir:
        config = ServiceOptions(workers=1, jobs_dir=jobs_dir)
        server = make_server(port=0, config=config, quiet=True)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        port = server.server_address[1]
        service = server.service

        # -------------------------------------------- phase A: worker death
        controller = chaos.install(
            {"points": [{"site": "job_worker_death", "at": [0]}]}
        )
        conn = _connect(port)
        conn.request(
            "POST", "/v1/campaign", body=campaign_body,
            headers={"Content-Type": "application/json", "X-Tenant": "chaos"},
        )
        reply = json.loads(conn.getresponse().read())
        assert reply.get("ok"), f"campaign submit failed: {reply}"
        job_id = reply["result"]["id"]
        deadline = time.time() + 60.0
        state = None
        while time.time() < deadline:
            conn.request("GET", f"/v1/jobs/{job_id}")
            state = json.loads(conn.getresponse().read())["result"]["state"]
            if state in ("done", "failed", "cancelled"):
                break
            time.sleep(0.05)
        assert state == "done", (
            f"job did not recover from worker death (state={state})"
        )
        deaths = sum(
            1 for f in controller.fired() if f["site"] == "job_worker_death"
        )
        assert deaths == 1, f"expected 1 injected worker death, got {deaths}"

        # ------------------------------------------ phase B: kernel faults
        # fault-free baseline flags per client body (breaker not yet hit)
        chaos.install(None)
        baseline = []
        for body in bodies:
            reply = _post(conn, body, "baseline")
            assert reply.get("ok"), f"baseline grade failed: {reply}"
            baseline.append(reply["result"]["detected_flags"])
        conn.close()

        # scattered occurrences: never back-to-back, so a single
        # retry ladder cannot exhaust all breaker tiers
        fault_at = [0, 4] if smoke else [0, 7]
        controller = chaos.install(
            {"points": [{"site": "kernel_fault", "at": fault_at}]}
        )
        errors = [0]
        latencies_ms = []
        lock = threading.Lock()
        barrier = threading.Barrier(clients + 1)

        def client(index: int) -> None:
            conn = _connect(port)
            barrier.wait()
            for _ in range(requests_per_client):
                t0 = time.perf_counter()
                try:
                    reply = _post(conn, bodies[index], f"chaos-{index}")
                    ok = reply.get("ok", False)
                except OSError:
                    ok, reply = False, {}
                elapsed_ms = (time.perf_counter() - t0) * 1000.0
                with lock:
                    if ok and reply["result"]["detected_flags"] == baseline[index]:
                        latencies_ms.append(elapsed_ms)
                    else:
                        errors[0] += 1
            conn.close()

        threads = [
            threading.Thread(target=client, args=(k,)) for k in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        t_start = time.perf_counter()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - t_start
        kernel_faults = sum(
            1 for f in controller.fired() if f["site"] == "kernel_fault"
        )
        chaos.install(None)
        chaos.uninstall()

        metrics = service.metrics()
        validate(metrics)
        server.shutdown()
        server.server_close()
        service.shutdown()

    total = clients * requests_per_client
    latencies_ms.sort()
    row = {
        "workload": "chaos",
        "circuit": circuit.name,
        "clients": clients,
        "requests": total,
        "errors": errors[0],
        "seconds": round(seconds, 4),
        "requests_per_s": round(total / seconds, 2) if seconds else 0.0,
        "injected_kernel_faults": kernel_faults,
        "injected_worker_deaths": deaths,
        "degraded_circuits": metrics["degraded_circuits"],
        "worker_restarts": metrics["worker_restarts"],
        "jobs_done": metrics["jobs"]["done"],
        "jobs_failed": metrics["jobs"]["failed"],
        "p50_ms": round(_percentile(latencies_ms, 0.50), 2),
        "p95_ms": round(_percentile(latencies_ms, 0.95), 2),
    }
    print(
        f"chaos: {total} requests, {errors[0]} errors, "
        f"{kernel_faults} kernel faults absorbed "
        f"(degraded_circuits={row['degraded_circuits']}), "
        f"{deaths} worker death recovered "
        f"(worker_restarts={row['worker_restarts']}), "
        f"jobs done={row['jobs_done']} failed={row['jobs_failed']}"
    )
    failures = 0
    if errors[0]:
        print(f"FAIL chaos: {errors[0]} client-visible errors (want 0)")
        failures += 1
    if row["degraded_circuits"] < 1:
        print("FAIL chaos: kernel faults did not degrade any circuit")
        failures += 1
    if row["worker_restarts"] < 1:
        print("FAIL chaos: worker death did not record a restart")
        failures += 1
    if row["jobs_failed"]:
        print(f"FAIL chaos: {row['jobs_failed']} job(s) failed (want 0)")
        failures += 1
    if failures:
        return 1

    # merge the chaos row into the benchmark artifact (replace stale
    # chaos rows, keep the measured throughput rows untouched)
    try:
        with open(out) as handle:
            payload = json.load(handle)
        rows = [r for r in payload["rows"] if r.get("workload") != "chaos"]
    except (OSError, ValueError, KeyError):
        payload, rows = None, []
    rows.append(row)
    body = {
        "benchmark": "service_throughput",
        "units": "requests/second",
        "python": platform.python_version(),
        "workers": WORKERS,
        "rows": rows,
    }
    if payload is not None:
        for key in ("benchmark", "units", "python", "workers"):
            body[key] = payload.get(key, body[key])
    payload = stamp("repro/bench-service", body)
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")
    return 0


def check(path: str) -> int:
    """The CI soft perf guard over an existing artifact."""
    validate_file(path)
    with open(path) as handle:
        payload = json.load(handle)
    chaos_rows = [
        row for row in payload["rows"] if row.get("workload") == "chaos"
    ]
    failures = 0
    for row in chaos_rows:
        if row["errors"] or row["jobs_failed"]:
            print(
                f"FAIL {path}: chaos row recorded {row['errors']} errors, "
                f"{row['jobs_failed']} failed jobs"
            )
            failures += 1
    by_key = {
        (row["clients"], row["coalesce"]): row
        for row in payload["rows"]
        if row.get("workload") != "chaos"
    }
    off = by_key.get((GUARD_CLIENTS, False))
    on = by_key.get((GUARD_CLIENTS, True))
    if off is None or on is None:
        print(f"FAIL {path}: no {GUARD_CLIENTS}-client row pair to guard on")
        return 1
    for row in (off, on):
        if row["errors"]:
            print(
                f"FAIL {path}: {row['clients']}-client "
                f"coalesce={row['coalesce']} row recorded "
                f"{row['errors']} errors"
            )
            failures += 1
    speedup = (
        on["requests_per_s"] / off["requests_per_s"]
        if off["requests_per_s"]
        else 0.0
    )
    if speedup < MIN_SPEEDUP:
        print(
            f"FAIL {path}: coalescing-on throughput is only {speedup:.2f}x "
            f"coalescing-off at {GUARD_CLIENTS} clients "
            f"(need >= {MIN_SPEEDUP}x)"
        )
        failures += 1
    else:
        print(
            f"ok   {path}: coalescing {speedup:.2f}x at {GUARD_CLIENTS} "
            f"clients ({off['requests_per_s']} -> {on['requests_per_s']} "
            f"req/s, p95 {off['p95_ms']} -> {on['p95_ms']} ms)"
        )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out", nargs="?", default="BENCH_service.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI variant: 2 clients, 2 requests each, small circuit",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="guard an existing artifact instead of regenerating",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="availability-under-faults run (deterministic injection); "
        "merges a chaos row into the artifact",
    )
    args = parser.parse_args()
    if args.check:
        return check(args.out)
    if args.chaos:
        return run_chaos(args.out, smoke=args.smoke)
    return regenerate(args.out, smoke=args.smoke)


if __name__ == "__main__":
    sys.exit(main())
