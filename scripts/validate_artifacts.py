#!/usr/bin/env python
"""Validate checked-in JSON artifacts against the schema registry.

Thin wrapper over ``tip validate`` (:mod:`repro.api.schemas`): every
artifact must carry a ``schema``/``schema_version`` envelope that is
registered in :data:`repro.api.schemas.SCHEMAS` and match the declared
structural spec — shape drift without a version bump fails.  CI runs
this on every push.  Usage::

    PYTHONPATH=src python scripts/validate_artifacts.py [FILES...]

With no arguments, validates the checked-in ``BENCH_*.json``.
"""

import sys

from repro.cli import main_validate

if __name__ == "__main__":
    sys.exit(main_validate(sys.argv[1:]))
