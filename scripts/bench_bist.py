#!/usr/bin/env python
"""Regenerate BENCH_bist.json: end-to-end BIST throughput per backend.

Each row times the complete windowed BIST loop
(:func:`repro.bist.run_bist` behind ``AtpgSession.bist``) — LFSR slab
generation, the fault-free pass into the MISR, fault grading with
dropping, and the coverage curve — under one execution tier at a
time:

* ``interp`` — the compiled kernel's per-gate interpreted loop,
* ``vector`` / ``codegen`` — the fused numpy strategies,
* ``native`` — the compiled-C word backend, when a toolchain is
  available.

Every tier replays the identical pseudorandom stream (same LFSR
polynomial and seed), and the coverage curve and MISR signature are
asserted bit-identical across tiers before any timing is trusted —
speed is never bought with a semantics change.  Throughput is
patterns per second over the patterns actually applied (fault
dropping stops identically in every tier).  Usage::

    PYTHONPATH=src python scripts/bench_bist.py [output.json]
    PYTHONPATH=src python scripts/bench_bist.py --check [output.json]

``--check`` is the CI soft perf guard: it re-reads the JSON and fails
unless, on every ``bulk2k`` row that carries native columns, the
native backend grades BIST patterns at least as fast as the
interpreted loop (correctness is asserted everywhere; absolute
speedups are only trusted from CI hardware).
"""

import json
import platform
import sys
import time

from repro.analysis import render_table
from repro.api import AtpgSession
from repro.api.resolve import resolve_circuit
from repro.api.schemas import stamp, validate_file
from repro.kernel.native import native_available

#: (spec, fault model, fault cap, pattern budget) per row.  bulk2k
#: (~2k gates, wide and shallow) is where per-gate interpreter
#: overhead dominates and carries the rows the CI guard reads.
RUNS = [
    ("c880", "stuck_at", None, 1024),
    ("c880", "path_delay", 128, 1024),
    ("bulk2k", "stuck_at", 256, 1024),
    ("bulk2k", "path_delay", 64, 1024),
]

GUARD_CIRCUIT = "bulk2k"
WINDOW = 256
REPEAT = 2


def _time_bist(session, fault_model, max_faults, max_patterns, overrides):
    """Best-of-REPEAT full BIST runs; each replays the same stream."""
    best = float("inf")
    report = None
    for _ in range(REPEAT):
        t0 = time.perf_counter()
        report = session.bist(
            fault_model=fault_model,
            max_faults=max_faults,
            bist_window=WINDOW,
            bist_max_patterns=max_patterns,
            **overrides,
        )
        best = min(best, time.perf_counter() - t0)
    return best, report


def bist_row(spec, fault_model, max_faults, max_patterns, native):
    session = AtpgSession(resolve_circuit(spec))
    tiers = [
        ("interp", {"sim_backend": "numpy", "fusion": "interp"}),
        ("vector", {"sim_backend": "numpy", "fusion": "vector"}),
        ("codegen", {"sim_backend": "numpy", "fusion": "codegen"}),
    ]
    if native:
        tiers.append(("native", {"sim_backend": "native", "fusion": "auto"}))

    row = {
        "circuit": session.circuit.name,
        "fault_model": fault_model,
        "lfsr_width": 32,
        "lfsr_kind": "fibonacci",
        "window": WINDOW,
    }
    baseline = None
    for name, overrides in tiers:
        seconds, report = _time_bist(
            session, fault_model, max_faults, max_patterns, overrides
        )
        if baseline is None:
            baseline = report
            row["patterns"] = report.patterns_applied
            row["faults"] = report.faults
            row["detected"] = report.detected
            row["coverage"] = round(report.coverage, 4)
            if report.test_class is not None:
                row["test_class"] = report.test_class.value
        elif (
            report.curve != baseline.curve
            or report.signature != baseline.signature
        ):
            raise AssertionError(
                f"{name} and interp BIST disagree on {session.circuit.name} "
                f"({fault_model})"
            )
        row[f"{name}_seconds"] = round(seconds, 6)
        row[f"{name}_patterns_per_s"] = round(
            report.patterns_applied / seconds, 1
        )
    if native:
        row["native_speedup"] = round(
            row["interp_seconds"] / row["native_seconds"], 2
        )
    return row


def regenerate(out: str) -> int:
    native = native_available()
    rows = [
        bist_row(spec, fault_model, max_faults, max_patterns, native)
        for spec, fault_model, max_faults, max_patterns in RUNS
    ]
    print(render_table(rows, title="End-to-end BIST throughput per backend"))
    payload = stamp(
        "repro/bench-bist",
        {
            "benchmark": "bist_throughput",
            "units": "patterns/second",
            "python": platform.python_version(),
            "rows": rows,
        },
    )
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")
    return 0


def check(path: str) -> int:
    """The CI soft perf guard over an existing artifact."""
    validate_file(path)
    with open(path) as handle:
        payload = json.load(handle)
    guarded = [
        row for row in payload["rows"] if row["circuit"] == GUARD_CIRCUIT
    ]
    if not guarded:
        print(f"FAIL {path}: no {GUARD_CIRCUIT} rows to guard on")
        return 1
    failures = 0
    for row in guarded:
        label = f"{GUARD_CIRCUIT} {row['fault_model']}"
        native = row.get("native_patterns_per_s")
        if native is None:
            # no-toolchain bench host: nothing to guard on this row
            print(f"ok   {path}: {label} carries no native columns")
            continue
        interp = row["interp_patterns_per_s"]
        if native < interp:
            print(
                f"FAIL {path}: native BIST on {label} is slower than the "
                f"interpreted loop ({native} < {interp} patterns/s)"
            )
            failures += 1
        else:
            print(
                f"ok   {path}: {label} native {native} patterns/s >= "
                f"interp {interp} patterns/s "
                f"(speedup {row.get('native_speedup')})"
            )
    return 1 if failures else 0


def main() -> int:
    argv = sys.argv[1:]
    checking = "--check" in argv
    argv = [a for a in argv if a != "--check"]
    out = argv[0] if argv else "BENCH_bist.json"
    if checking:
        return check(out)
    return regenerate(out)


if __name__ == "__main__":
    sys.exit(main())
