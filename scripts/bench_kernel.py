#!/usr/bin/env python
"""Regenerate BENCH_kernel.json: seed vs compiled-kernel PPSFP throughput.

Thin wrapper over ``tip-bench-sim`` pinning the comparison the kernel
refactor is gated on: robust-class PPSFP over the c880-scale generator
suite rows, 4096-pattern batches, best of three runs.  Usage::

    PYTHONPATH=src python scripts/bench_kernel.py [output.json]
"""

import sys

from repro.cli import main_bench_sim

CIRCUITS = ["c880", "c499", "c1908", "s1423"]


def main() -> int:
    out = sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernel.json"
    return main_bench_sim(
        CIRCUITS
        + ["--class", "robust", "--patterns", "4096", "--fault-cap", "128",
           "--repeat", "3", "--json", out]
    )


if __name__ == "__main__":
    sys.exit(main())
