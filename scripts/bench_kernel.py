#!/usr/bin/env python
"""Regenerate BENCH_kernel.json: fused-kernel throughput per workload.

Three workloads, each comparing the compiled kernel's interpreted
per-gate loop against the fused execution strategies — and, when a C
toolchain is available, the compiled-C native backend
(:mod:`repro.kernel.native`) — on identical inputs, results asserted
bit-identical across every tier:

* ``ppsfp`` — robust-class PPSFP detection masks (4096-pattern
  batches; the four ``*_like`` generator-suite rows also keep the seed
  object-graph baseline for the historical comparison),
* ``grade10`` — 10-valued detection-strength grading (one 5-plane
  forward pass, all three classes per fault),
* ``stuck_at`` — parallel-pattern stuck-at cone resimulation
  (per-cone compiled bodies vs the gate-by-gate cone walk),
* ``bist`` — BIST grading: LFSR-generated launch/capture slabs
  (pattern delivery timed with the simulation, as a BIST engine
  spends it) through the PPSFP detection-mask kernel.

The ``bulk2k`` circuit (~2k gates, wide and shallow) is the workload
where per-gate interpreter overhead actually dominates, and carries
the rows the CI perf guard reads — one per workload.  Usage::

    PYTHONPATH=src python scripts/bench_kernel.py [output.json]
    PYTHONPATH=src python scripts/bench_kernel.py --check [output.json]

``--check`` is the CI soft perf guard: it re-reads the JSON and fails
unless the best fused strategy on every ``bulk2k`` row is at least as
fast as the interpreted loop, and — when the rows carry native
columns — the native backend is too (correctness is asserted
everywhere; absolute speedups are only trusted from CI hardware).
"""

import json
import platform
import sys

from repro.api.resolve import resolve_circuit, resolve_test_class
from repro.api.schemas import stamp, validate_file
from repro.cli import bench_bist, bench_grade10, bench_ppsfp, bench_stuck_at
from repro.analysis import render_table

#: (spec, fault cap) per PPSFP row.  bulk2k uses a smaller cap so the
#: per-fault detection walk (identical across tiers) leaves the
#: simulation pass — the part the fused strategies accelerate — as
#: the dominant cost, matching the drop-loop workload shape where a
#: shrinking pending set is checked against large fresh batches.
CIRCUITS = [
    ("c880", 128),
    ("c499", 32),
    ("c1908", 128),
    ("s1423", 128),
    ("bulk2k", 64),
]

GUARD_CIRCUIT = "bulk2k"
GUARD_WORKLOADS = ("ppsfp", "grade10", "stuck_at", "bist")


def regenerate(out: str) -> int:
    test_class = resolve_test_class("robust")
    rows = []
    for spec, fault_cap in CIRCUITS:
        circuit = resolve_circuit(spec)
        rows.append(
            bench_ppsfp(
                circuit,
                test_class,
                n_patterns=4096,
                fault_cap=fault_cap,
                repeat=3,
                native=True,
            )
        )
    bulk = resolve_circuit(GUARD_CIRCUIT)
    rows.append(
        bench_grade10(bulk, n_patterns=1024, fault_cap=32, repeat=3, native=True)
    )
    rows.append(
        bench_stuck_at(bulk, n_vectors=256, fault_cap=192, repeat=3, native=True)
    )
    rows.append(
        bench_bist(
            bulk, test_class, n_patterns=4096, fault_cap=64, repeat=3, native=True
        )
    )
    print(render_table(rows, title="Fused kernel throughput per workload"))
    payload = stamp(
        "repro/bench-kernel",
        {
            "benchmark": "fused_kernel_throughput",
            "units": "patterns*faults/second",
            "python": platform.python_version(),
            "rows": rows,
        },
    )
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")
    return 0


def check(path: str) -> int:
    """The CI soft perf guard over an existing artifact."""
    validate_file(path)
    with open(path) as handle:
        payload = json.load(handle)
    # row.get: a stale pre-v3 artifact still validates (the old schema
    # stays registered) but carries no workload column — that must be
    # a clean FAIL per guarded workload, not a KeyError
    guarded = {
        row.get("workload"): row
        for row in payload["rows"]
        if row["circuit"] == GUARD_CIRCUIT
    }
    failures = 0
    for workload in GUARD_WORKLOADS:
        row = guarded.get(workload)
        if row is None:
            print(f"FAIL {path}: no {GUARD_CIRCUIT} {workload} row to guard on")
            failures += 1
            continue
        speedup = row.get("fused_speedup")
        if speedup is None:
            print(
                f"FAIL {path}: {GUARD_CIRCUIT} {workload} row carries no "
                f"fused timings"
            )
            failures += 1
            continue
        if speedup < 1.0:
            print(
                f"FAIL {path}: fused {workload} on {GUARD_CIRCUIT} is slower "
                f"than the interpreted loop (fused_speedup={speedup})"
            )
            failures += 1
            continue
        print(
            f"ok   {path}: {GUARD_CIRCUIT} {workload} fused_speedup={speedup} "
            f"(best strategy: {row.get('best_fused')})"
        )
        # native is optional in the artifact (no-toolchain bench hosts)
        # but when recorded it must at least match the interpreted loop
        native_speedup = row.get("native_speedup")
        if native_speedup is None:
            continue
        if native_speedup < 1.0:
            print(
                f"FAIL {path}: native {workload} on {GUARD_CIRCUIT} is "
                f"slower than the interpreted loop "
                f"(native_speedup={native_speedup})"
            )
            failures += 1
        else:
            print(
                f"ok   {path}: {GUARD_CIRCUIT} {workload} "
                f"native_speedup={native_speedup}"
            )
    return 1 if failures else 0


def main() -> int:
    argv = sys.argv[1:]
    checking = "--check" in argv
    argv = [a for a in argv if a != "--check"]
    out = argv[0] if argv else "BENCH_kernel.json"
    if checking:
        return check(out)
    return regenerate(out)


if __name__ == "__main__":
    sys.exit(main())
