#!/usr/bin/env python
"""Regenerate BENCH_kernel.json: PPSFP throughput per execution tier.

Rows compare, per circuit, the seed object-graph path, the compiled
kernel's interpreted per-gate loop, and the two fused strategies
(level-vectorized numpy groups and straight-line codegen) on one
identical robust-class PPSFP workload — 4096-pattern batches, best of
three runs, detection masks asserted bit-identical across every tier.

The four ``*_like`` generator-suite rows track the historical
comparison; the ``bulk2k`` row (~2k gates, wide and shallow) is the
workload where per-gate interpreter overhead actually dominates, and
is the row the CI perf guard reads.  Usage::

    PYTHONPATH=src python scripts/bench_kernel.py [output.json]
    PYTHONPATH=src python scripts/bench_kernel.py --check [output.json]

``--check`` is the CI soft perf guard: it re-reads the JSON and fails
unless the best fused strategy on ``bulk2k`` is at least as fast as
the interpreted loop (correctness is asserted everywhere; absolute
speedups are only trusted from CI hardware).
"""

import json
import platform
import sys

from repro.api.resolve import resolve_circuit, resolve_test_class
from repro.api.schemas import stamp, validate_file
from repro.cli import bench_ppsfp
from repro.analysis import render_table

#: (spec, fault cap) per row.  bulk2k uses a smaller cap so the
#: per-fault detection walk (identical across tiers) leaves the
#: simulation pass — the part the fused strategies accelerate — as
#: the dominant cost, matching the drop-loop workload shape where a
#: shrinking pending set is checked against large fresh batches.
CIRCUITS = [
    ("c880", 128),
    ("c499", 32),
    ("c1908", 128),
    ("s1423", 128),
    ("bulk2k", 64),
]

GUARD_CIRCUIT = "bulk2k"


def regenerate(out: str) -> int:
    test_class = resolve_test_class("robust")
    rows = []
    for spec, fault_cap in CIRCUITS:
        circuit = resolve_circuit(spec)
        rows.append(
            bench_ppsfp(
                circuit,
                test_class,
                n_patterns=4096,
                fault_cap=fault_cap,
                repeat=3,
            )
        )
    print(render_table(rows, title="PPSFP throughput per execution tier"))
    payload = stamp(
        "repro/bench-kernel",
        {
            "benchmark": "ppsfp_throughput",
            "units": "patterns*faults/second",
            "python": platform.python_version(),
            "rows": rows,
        },
    )
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")
    return 0


def check(path: str) -> int:
    """The CI soft perf guard over an existing artifact."""
    validate_file(path)
    with open(path) as handle:
        payload = json.load(handle)
    for row in payload["rows"]:
        if row["circuit"] == GUARD_CIRCUIT:
            break
    else:
        print(f"FAIL {path}: no {GUARD_CIRCUIT} row to guard on")
        return 1
    speedup = row.get("fused_speedup")
    if speedup is None:
        print(f"FAIL {path}: {GUARD_CIRCUIT} row carries no fused timings")
        return 1
    if speedup < 1.0:
        print(
            f"FAIL {path}: fused PPSFP on {GUARD_CIRCUIT} is slower than the "
            f"interpreted loop (fused_speedup={speedup})"
        )
        return 1
    print(
        f"ok   {path}: {GUARD_CIRCUIT} fused_speedup={speedup} "
        f"(best strategy: {row.get('best_fused')})"
    )
    return 0


def main() -> int:
    argv = sys.argv[1:]
    checking = "--check" in argv
    argv = [a for a in argv if a != "--check"]
    out = argv[0] if argv else "BENCH_kernel.json"
    if checking:
        return check(out)
    return regenerate(out)


if __name__ == "__main__":
    sys.exit(main())
