"""Paper Table 8: robust comparison TIP vs TSUNAMI-D vs DYNAMITE.

Expected shape: TIP matches or beats the structural baseline's tested
counts on every row; total runtime is comparable between TIP and the
DYNAMITE-like tool ("for robust test generation it is comparable").
The BDD baseline's robust class is slightly *larger* (its static
stability approximation — the paper notes TSUNAMI-D "is based on a
slightly deviated test class").
"""

from conftest import run_and_render

from repro.analysis import run_table8


def test_table8_robust_comparison(benchmark):
    rows = run_and_render(
        benchmark,
        run_table8,
        "Table 8 — robust: TIP vs TSUNAMI-D-like vs DYNAMITE-like",
        fault_cap=96,
    )
    assert len(rows) == 10
    for row in rows:
        assert row["TIP_tested"] >= row["DYNAMITE_tested"], row
        # the deviated (static) robust class may only add tests
        if row["TSUNAMI_aborted"] == 0:
            assert row["TSUNAMI_tested"] >= row["TIP_tested"], row
