"""Micro-benchmarks of the bit-parallel primitives.

These time the kernels the paper's speed-up rests on: one implication
fixpoint across 64 lanes, PPSFP fault simulation of a 64-pattern
batch, bit-parallel good simulation, and non-enumerative path
counting.  Useful for tracking performance regressions of the hot
paths independent of the end-to-end tables.
"""

import random

import pytest

from repro.circuit.suites import suite_circuit
from repro.core.patterns import random_patterns
from repro.core.fptpg import run_fptpg
from repro.core.state import THREE_VALUED, TpgState
from repro.logic import three_valued as tv
from repro.paths import TestClass, count_paths, fault_list
from repro.sim import DelayFaultSimulator, simulate_words
from repro.sim.logic_sim import pack_vectors


@pytest.fixture(scope="module")
def circuit():
    return suite_circuit("s9234", scale=1)


def test_implication_fixpoint_64_lanes(benchmark, circuit):
    """One full forward+backward fixpoint from all-input assignments."""
    rng = random.Random(5)
    words = [
        (rng.getrandbits(64), 0) if rng.random() < 0.5 else (0, rng.getrandbits(64))
        for _ in circuit.inputs
    ]

    def run():
        state = TpgState(circuit, THREE_VALUED, 64)
        for pi, planes in zip(circuit.inputs, words):
            state.assign(pi, planes)
        state.imply()
        return state.conflict_mask

    benchmark(run)


def test_fptpg_batch_64_faults(benchmark, circuit):
    faults = fault_list(circuit, cap=64, strategy="all")

    def run():
        return run_fptpg(circuit, faults, TestClass.NONROBUST, 64)

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(outcome.statuses) == len(faults)


def test_ppsfp_simulation_64_patterns(benchmark, circuit):
    patterns = random_patterns(circuit, 64, seed=6)
    faults = fault_list(circuit, cap=128, strategy="all")
    simulator = DelayFaultSimulator(circuit, TestClass.ROBUST)

    def run():
        return simulator.detected_faults(patterns, faults)

    benchmark(run)


def test_ppsfp_batch_2048_patterns_numpy(benchmark, circuit):
    """The multi-word bulk path: 2048 patterns in one numpy pass."""
    patterns = random_patterns(circuit, 2048, seed=8)
    faults = fault_list(circuit, cap=128, strategy="all")
    simulator = DelayFaultSimulator(circuit, TestClass.ROBUST, backend="numpy")

    def run():
        return simulator.detected_faults(patterns, faults)

    benchmark(run)


def test_good_simulation_256_lanes(benchmark, circuit):
    rng = random.Random(7)
    vectors = [
        [rng.randint(0, 1) for _ in circuit.inputs] for _ in range(256)
    ]
    words = pack_vectors(vectors)

    def run():
        return simulate_words(circuit, words, 256)

    benchmark(run)


def test_path_counting(benchmark, circuit):
    total = benchmark(count_paths, circuit)
    assert total > 0
