"""Ablation benchmarks (beyond the paper, motivated by its design).

* word-length sweep: L = 1 .. 128 — the paper had L fixed at 32/64 by
  hardware; Python integers let the reproduction sweep it (including
  beyond the native machine word) and locate the saturation point,
* mode ablation: FPTPG-only vs APTPG-only vs the paper's combination,
* implication ablation: the "best suited implication procedure"
  (unique backward implications) on vs off.
"""

from conftest import run_and_render

from repro.analysis import (
    run_ablation_implications,
    run_ablation_modes,
    run_ablation_word_length,
)


def test_ablation_word_length(benchmark):
    rows = run_and_render(
        benchmark,
        run_ablation_word_length,
        "Ablation — generation time vs word length L",
        fault_cap=192,
    )
    by_width = {row["L"]: row for row in rows}
    # more lanes must never test fewer faults, and L=64 must beat L=1
    assert by_width[64]["tested"] >= by_width[1]["tested"]
    assert by_width[64]["time_s"] < by_width[1]["time_s"]


def test_ablation_modes(benchmark):
    rows = run_and_render(
        benchmark,
        run_ablation_modes,
        "Ablation — FPTPG-only vs APTPG-only vs combined",
        fault_cap=192,
    )
    by_mode = {row["mode"]: row for row in rows}
    # the combination must dominate FPTPG-only on aborts and be no
    # slower than APTPG-only (the paper's Section 3.3 claim)
    assert by_mode["combined"]["aborted"] <= by_mode["fptpg_only"]["aborted"]
    assert by_mode["combined"]["time_s"] <= by_mode["aptpg_only"]["time_s"] * 1.5


def test_ablation_implications(benchmark):
    rows = run_and_render(
        benchmark,
        run_ablation_implications,
        "Ablation — forward-only vs unique backward implications",
        fault_cap=192,
    )
    by_kind = {row["implications"]: row for row in rows}
    # stronger implications cannot settle fewer faults
    strong = by_kind["with_backward"]
    weak = by_kind["forward_only"]
    assert strong["tested"] + strong["redundant"] >= weak["tested"] + weak["redundant"]
