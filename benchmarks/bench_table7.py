"""Paper Table 7: nonrobust comparison TIP vs TSUNAMI-D vs DYNAMITE.

Three generators over the identical fault lists.  Expected shape (per
the paper): TIP tests at least as many faults as both baselines on
every row (it is complete on these workloads), and is clearly faster
than the DYNAMITE-like structural baseline for nonrobust generation
("TIP is up to eight times faster than DYNAMITE").  The BDD baseline
is quick on the small rows and degrades/aborts as circuits grow.
"""

from conftest import run_and_render

from repro.analysis import run_table7


def test_table7_nonrobust_comparison(benchmark):
    rows = run_and_render(
        benchmark,
        run_table7,
        "Table 7 — nonrobust: TIP vs TSUNAMI-D-like vs DYNAMITE-like",
        fault_cap=128,
    )
    assert len(rows) == 10
    for row in rows:
        assert row["TIP_tested"] >= row["DYNAMITE_tested"], row
    tip_total = sum(row["TIP_time_s"] for row in rows)
    dyn_total = sum(row["DYNAMITE_time_s"] for row in rows)
    assert tip_total < dyn_total  # the paper's headline for this table
