"""Paper Figures 1 and 2: the bit-level walkthroughs as benchmarks.

These pin the paper's worked examples (Section 3) and time the two
modes on the original four-lane configuration.
"""

from repro.analysis import run_figure1, run_figure2


def test_figure1_fptpg(benchmark):
    result = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    print()
    print("Figure 1 — FPTPG, 4 paths on bit levels 0..3:")
    circuit = result["circuit"]
    for fault, status in zip(result["faults"], result["statuses"]):
        print(f"  {fault.describe(circuit):18s} -> {status}")
    for name, word in result["lane_words"].items():
        print(f"  {name}: {word}")
    assert result["statuses"] == ["tested", "redundant", "tested", "tested"]
    assert result["decisions"] == 1  # one backtrace: d = 1


def test_figure2_aptpg(benchmark):
    result = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    print()
    print("Figure 2 — APTPG, path a-p-x (falling), 4 alternatives:")
    print(f"  status: {result['status']}, splits: {result['splits_used']}")
    for name, word in result["lane_words"].items():
        print(f"  {name}: {word}")
    assert result["status"] == "tested"
    assert result["backtracks"] == 0
