"""Shared helpers for the benchmark harness.

Every module regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index).  The experiment runners are invoked
once per benchmark (``pedantic`` mode) because each run is itself a
full ATPG campaign; the rendered paper-style table is printed so the
output can be compared with the publication row by row.
"""

import pytest

from repro.analysis.tables import render_table


def run_and_render(benchmark, runner, title, **kwargs):
    """Benchmark *runner* once and print its rows as a paper table."""
    rows = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(render_table(rows, title=title))
    return rows
