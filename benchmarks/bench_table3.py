"""Paper Table 3: Robust ATPG for the ISCAS85(-like) circuits.

Regenerates the columns # faults / # tested / efficiency / time for
every circuit row of the paper's Table 3 (c6288 excluded, exactly as
the paper footnotes).  Expected shape: every row completes, with at
most a tiny aborted fraction (the paper reports efficiency >= 99.87%).
"""

from conftest import run_and_render

from repro.analysis import run_table3


def test_table3_robust_iscas85(benchmark):
    rows = run_and_render(
        benchmark,
        run_table3,
        "Table 3 — robust ATPG (ISCAS85-like suite)",
        fault_cap=128,
    )
    assert len(rows) == 9
    for row in rows:
        # the paper's headline: robust generation handles every
        # circuit with near-complete efficiency
        assert row["efficiency_%"] >= 99.0, row
