"""Benchmark of the stuck-at extension (the paper's future work).

Times the bit-parallel stuck-at engine on a suite circuit and checks
the expected shape: complete classification (no aborts) with full
coverage of the testable faults, and the L-lane engine beating the
single-lane configuration of the same code.
"""

import pytest

from repro.circuit.suites import suite_circuit
from repro.core.stuck_at import (
    StuckAtStatus,
    all_stuck_at_faults,
    generate_stuck_at_tests,
)


@pytest.fixture(scope="module")
def workload():
    circuit = suite_circuit("s1423", scale=1)
    return circuit, all_stuck_at_faults(circuit)


def test_stuck_at_bit_parallel(benchmark, workload):
    circuit, faults = workload
    report = benchmark.pedantic(
        lambda: generate_stuck_at_tests(circuit, faults, width=64),
        rounds=1,
        iterations=1,
    )
    print()
    print("Stuck-at extension:", report.summary())
    assert report.count(StuckAtStatus.ABORTED) == 0
    assert report.n_tested > 0


def test_stuck_at_single_lane_reference(benchmark, workload):
    circuit, faults = workload
    report = benchmark.pedantic(
        lambda: generate_stuck_at_tests(circuit, faults, width=1),
        rounds=1,
        iterations=1,
    )
    print()
    print("Stuck-at single-lane:", report.summary())
    assert report.n_faults == len(faults)
