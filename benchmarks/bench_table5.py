"""Paper Table 5: bit-parallel vs single-bit generation, robust.

Both generators get the identical fault list; the rows report t_sens,
t_single, t_parallel and the speed-up.  Expected shape: speed-up > 1
on every circuit with an average around 2-5 (the paper reports 1.4 to
8.9, average about five), and the single-bit run never aborts fewer
faults than the parallel one.
"""

from conftest import run_and_render

from repro.analysis import run_table5
from repro.analysis.metrics import geometric_mean


def test_table5_robust_speedup(benchmark):
    rows = run_and_render(
        benchmark,
        run_table5,
        "Table 5 — single-bit vs bit-parallel (robust)",
        fault_cap=160,
    )
    assert len(rows) == 11
    speedups = [row["speedup"] for row in rows]
    beats = sum(1 for s in speedups if s > 1.0)
    assert beats >= len(rows) - 1  # bit-parallel wins (tiny rows may tie)
    mean = geometric_mean(speedups)
    assert mean is not None and mean > 1.5
    for row in rows:
        assert row["aborted_parallel"] <= row["aborted_single"], row
