"""Paper Table 6: bit-parallel vs single-bit generation, nonrobust.

Expected shape: speed-up > 1 on every circuit (the paper reports 2.3
to 7.2 with an average around 4) — nonrobust generation parallelizes
well because most faults need no decisions at all.
"""

from conftest import run_and_render

from repro.analysis import run_table6
from repro.analysis.metrics import geometric_mean


def test_table6_nonrobust_speedup(benchmark):
    rows = run_and_render(
        benchmark,
        run_table6,
        "Table 6 — single-bit vs bit-parallel (nonrobust)",
        fault_cap=192,
    )
    assert len(rows) == 11
    speedups = [row["speedup"] for row in rows]
    beats = sum(1 for s in speedups if s > 1.0)
    assert beats >= len(rows) - 1
    mean = geometric_mean(speedups)
    assert mean is not None and mean > 2.0
