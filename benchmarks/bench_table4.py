"""Paper Table 4: Nonrobust ATPG for the ISCAS85(-like) circuits.

Expected shape (the paper's explicit claim): "Contrary to previously
published approaches for nonrobust test generation, no aborted paths
are left" — efficiency is 100% on every row, and each circuit runs
roughly an order of magnitude faster than its robust counterpart.
"""

from conftest import run_and_render

from repro.analysis import run_table4


def test_table4_nonrobust_iscas85(benchmark):
    rows = run_and_render(
        benchmark,
        run_table4,
        "Table 4 — nonrobust ATPG (ISCAS85-like suite)",
        fault_cap=256,
    )
    assert len(rows) == 9
    for row in rows:
        assert row["efficiency_%"] == 100.0, row
